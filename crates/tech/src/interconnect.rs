//! ITRS wire geometry and BPTM-style predictive R/C extraction.
//!
//! The paper: *"The interconnect properties, such as wire pitch, space,
//! aspect ratio, and dielectric material parameters, are based on the
//! ITRS roadmap. We predict the interconnect resistance and capacitance
//! by the interconnect model of Berkeley Predictive Technology Model
//! (BPTM)."*
//!
//! We implement both directly: geometry tables live in
//! [`crate::node45::Node45::wire_geometry`], and this module provides the
//! closed-form BPTM per-unit-length formulas
//! (Wong/Cao-style empirical fits for a wire running between two ground
//! planes with lateral neighbours on both sides) plus a [`Wire`] helper
//! that expands a wire into the RC π-ladder consumed by the circuit
//! simulator.

use crate::constants::EPSILON_0;
use crate::units::{Farads, Meters, Ohms, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Interconnect layer class, in the ITRS local/intermediate/global
/// taxonomy. Crossbar wires in a router are intermediate-layer wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerClass {
    /// M1-class local wiring (tightest pitch).
    Local,
    /// Intermediate routing layers — used for the crossbar spans.
    Intermediate,
    /// Top-level global wiring (widest, thickest).
    Global,
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerClass::Local => "local",
            LayerClass::Intermediate => "intermediate",
            LayerClass::Global => "global",
        };
        f.write_str(s)
    }
}

/// Physical cross-section of a wire on some layer. All lengths in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireGeometry {
    /// Layer class this geometry describes.
    pub class: LayerClass,
    /// Drawn wire width.
    pub width: f64,
    /// Space to each lateral neighbour.
    pub spacing: f64,
    /// Metal thickness.
    pub thickness: f64,
    /// Dielectric height to the ground plane above/below.
    pub height_above_plane: f64,
    /// Effective relative permittivity of the inter-layer dielectric.
    pub dielectric_k: f64,
    /// Effective conductor resistivity (Ω·m), barrier included.
    pub resistivity: f64,
}

impl WireGeometry {
    /// Wire pitch (width + spacing).
    pub fn pitch(&self) -> Meters {
        Meters(self.width + self.spacing)
    }

    /// Resistance per unit length (Ω/m): `ρ / (w·t)`.
    pub fn resistance_per_length(&self) -> Ohms {
        Ohms(self.resistivity / (self.width * self.thickness))
    }

    /// Ground capacitance per unit length to **one** plane (F/m), BPTM
    /// empirical fit:
    ///
    /// ```text
    /// C_g = ε · [ w/h + 2.04·(s/(s+0.54h))^1.77 · (t/(t+4.53h))^0.07 ]
    /// ```
    pub fn ground_capacitance_per_length(&self) -> Farads {
        let (w, s, t, h) = (
            self.width,
            self.spacing,
            self.thickness,
            self.height_above_plane,
        );
        let eps = self.dielectric_k * EPSILON_0;
        let term_plate = w / h;
        let term_fringe = 2.04 * (s / (s + 0.54 * h)).powf(1.77) * (t / (t + 4.53 * h)).powf(0.07);
        Farads(eps * (term_plate + term_fringe))
    }

    /// Coupling capacitance per unit length to **one** lateral neighbour
    /// (F/m), BPTM empirical fit:
    ///
    /// ```text
    /// C_c = ε · [ 1.14·(t/s)·(h/(h+2.06s))^0.09
    ///           + 0.74·(w/(w+1.59s))^1.14
    ///           + 1.16·(t/(t+1.87s))^0.16 · (h/(h+0.98s))^1.18 ]
    /// ```
    pub fn coupling_capacitance_per_length(&self) -> Farads {
        let (w, s, t, h) = (
            self.width,
            self.spacing,
            self.thickness,
            self.height_above_plane,
        );
        let eps = self.dielectric_k * EPSILON_0;
        let t1 = 1.14 * (t / s) * (h / (h + 2.06 * s)).powf(0.09);
        let t2 = 0.74 * (w / (w + 1.59 * s)).powf(1.14);
        let t3 = 1.16 * (t / (t + 1.87 * s)).powf(0.16) * (h / (h + 0.98 * s)).powf(1.18);
        Farads(eps * (t1 + t2 + t3))
    }

    /// Total capacitance per unit length (F/m): two ground planes plus
    /// two lateral neighbours (worst-case switching assumes neighbours
    /// quiet; Miller factors are applied by callers that model coupling
    /// explicitly).
    pub fn total_capacitance_per_length(&self) -> Farads {
        Farads(
            2.0 * self.ground_capacitance_per_length().0
                + 2.0 * self.coupling_capacitance_per_length().0,
        )
    }
}

/// A wire instance: a geometry plus a routed length.
///
/// # Example
///
/// ```
/// use lnoc_tech::node45::Node45;
/// use lnoc_tech::interconnect::{LayerClass, Wire};
///
/// let geom = Node45::tt().wire_geometry(LayerClass::Intermediate);
/// let wire = Wire::new(geom, 90.0e-6).unwrap(); // one crossbar span
/// assert!(wire.total_resistance().0 > 10.0);
/// assert!(wire.total_capacitance().0 > 1.0e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wire {
    geometry: WireGeometry,
    length: f64,
}

/// One segment of an RC π-ladder: series resistance with half the
/// segment capacitance hung on each end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiSegment {
    /// Series resistance of the segment.
    pub resistance: Ohms,
    /// Shunt capacitance at the segment's *input* end.
    pub cap_in: Farads,
    /// Shunt capacitance at the segment's *output* end.
    pub cap_out: Farads,
}

impl Wire {
    /// Creates a wire of the given routed length (m).
    ///
    /// # Errors
    ///
    /// Returns [`crate::TechError::InvalidParameter`] if `length` is not
    /// positive and finite.
    pub fn new(geometry: WireGeometry, length: f64) -> Result<Self, crate::TechError> {
        if length <= 0.0 || !length.is_finite() {
            return Err(crate::TechError::InvalidParameter {
                name: "length",
                value: length,
                constraint: "must be positive and finite",
            });
        }
        Ok(Wire { geometry, length })
    }

    /// The wire's geometry.
    pub fn geometry(&self) -> &WireGeometry {
        &self.geometry
    }

    /// Routed length (m).
    pub fn length(&self) -> Meters {
        Meters(self.length)
    }

    /// Lumped series resistance of the whole wire.
    pub fn total_resistance(&self) -> Ohms {
        Ohms(self.geometry.resistance_per_length().0 * self.length)
    }

    /// Lumped total capacitance of the whole wire.
    pub fn total_capacitance(&self) -> Farads {
        Farads(self.geometry.total_capacitance_per_length().0 * self.length)
    }

    /// Expands the wire into `n` π-segments for the circuit simulator.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn to_pi_ladder(&self, n: usize) -> Vec<PiSegment> {
        assert!(n > 0, "a π-ladder needs at least one segment");
        let r_seg = self.total_resistance().0 / n as f64;
        let c_seg = self.total_capacitance().0 / n as f64;
        (0..n)
            .map(|_| PiSegment {
                resistance: Ohms(r_seg),
                cap_in: Farads(0.5 * c_seg),
                cap_out: Farads(0.5 * c_seg),
            })
            .collect()
    }

    /// First-order Elmore delay of the wire driving a lumped load,
    /// assuming an ideal source: `R·C/2 + R·C_load`.
    ///
    /// Used as a sanity reference for the transient engine, not as the
    /// delay model itself.
    pub fn elmore_delay(&self, load: Farads) -> Seconds {
        let r = self.total_resistance().0;
        let c = self.total_capacitance().0;
        Seconds(r * c / 2.0 + r * load.0)
    }

    /// Splits this wire into `n` equal-length subwires (used by the
    /// segmented crossbar schemes, which insert isolation devices between
    /// subwires).
    pub fn split(&self, n: usize) -> Vec<Wire> {
        assert!(n > 0, "cannot split a wire into zero segments");
        (0..n)
            .map(|_| Wire {
                geometry: self.geometry,
                length: self.length / n as f64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node45::Node45;

    fn intermediate() -> WireGeometry {
        Node45::tt().wire_geometry(LayerClass::Intermediate)
    }

    #[test]
    fn capacitance_per_length_is_classic_0p2_ff_per_um() {
        let c = intermediate().total_capacitance_per_length().0; // F/m
        let ff_per_um = c * 1e15 / 1e6;
        assert!(
            (0.1..0.35).contains(&ff_per_um),
            "expected ≈0.2 fF/µm, got {ff_per_um}"
        );
    }

    #[test]
    fn resistance_per_length_ballpark() {
        let r = intermediate().resistance_per_length().0; // Ω/m
        let ohm_per_um = r / 1e6;
        assert!(
            (1.0..5.0).contains(&ohm_per_um),
            "expected ≈2 Ω/µm, got {ohm_per_um}"
        );
    }

    #[test]
    fn coupling_dominates_ground_at_tight_pitch() {
        let g = intermediate();
        assert!(
            g.coupling_capacitance_per_length().0 > g.ground_capacitance_per_length().0,
            "at AR 2 and minimum spacing, lateral coupling dominates"
        );
    }

    #[test]
    fn pi_ladder_conserves_totals() {
        let wire = Wire::new(intermediate(), 90.0e-6).unwrap();
        let ladder = wire.to_pi_ladder(7);
        let r_sum: f64 = ladder.iter().map(|s| s.resistance.0).sum();
        let c_sum: f64 = ladder.iter().map(|s| s.cap_in.0 + s.cap_out.0).sum();
        assert!((r_sum - wire.total_resistance().0).abs() < 1e-9 * r_sum);
        assert!((c_sum - wire.total_capacitance().0).abs() < 1e-21);
    }

    #[test]
    fn split_conserves_length_and_rc() {
        let wire = Wire::new(intermediate(), 90.0e-6).unwrap();
        let parts = wire.split(3);
        assert_eq!(parts.len(), 3);
        let r_sum: f64 = parts.iter().map(|w| w.total_resistance().0).sum();
        assert!((r_sum - wire.total_resistance().0).abs() < 1e-9 * r_sum);
    }

    #[test]
    fn elmore_scales_quadratically_with_length() {
        let g = intermediate();
        let short = Wire::new(g, 50.0e-6).unwrap().elmore_delay(Farads(0.0));
        let long = Wire::new(g, 100.0e-6).unwrap().elmore_delay(Farads(0.0));
        let ratio = long.0 / short.0;
        assert!((ratio - 4.0).abs() < 0.01, "Elmore ∝ L², got ratio {ratio}");
    }

    #[test]
    fn rejects_nonpositive_length() {
        assert!(Wire::new(intermediate(), 0.0).is_err());
        assert!(Wire::new(intermediate(), -1e-6).is_err());
        assert!(Wire::new(intermediate(), f64::NAN).is_err());
    }

    #[test]
    fn crossbar_span_rc_scale() {
        // A 5-port × 128-bit crossbar span at intermediate pitch:
        // 5 · 128 · pitch ≈ 90 µm, R ≈ 200 Ω, C ≈ 20 fF — the RC scale
        // that produces the paper's tens-of-ps delays.
        let g = intermediate();
        let span = 5.0 * 128.0 * g.pitch().0;
        let wire = Wire::new(g, span).unwrap();
        assert!((50.0e-6..200.0e-6).contains(&span));
        assert!((50.0..1000.0).contains(&wire.total_resistance().0));
        let c_ff = wire.total_capacitance().0 * 1e15;
        assert!((5.0..80.0).contains(&c_ff), "C = {c_ff} fF");
    }
}
