//! Physical constants used by the device and interconnect models.

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge (C).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Vacuum permittivity (F/m).
pub const EPSILON_0: f64 = 8.854_187_812_8e-12;

/// Relative permittivity of SiO₂.
pub const EPSILON_R_SIO2: f64 = 3.9;

/// Effective resistivity of damascene copper including barrier/liner
/// (Ω·m). ITRS quotes 2.2 µΩ·cm for the 45 nm generation.
pub const RHO_COPPER_EFF: f64 = 2.2e-8;

/// Thermal voltage kT/q at temperature `t_kelvin`.
#[inline]
pub fn thermal_voltage(t_kelvin: f64) -> f64 {
    BOLTZMANN * t_kelvin / ELEMENTARY_CHARGE
}

/// Room temperature, 300.15 K (27 °C): the default characterization point.
pub const ROOM_TEMPERATURE_K: f64 = 300.15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let vt = thermal_voltage(ROOM_TEMPERATURE_K);
        assert!((vt - 0.02587).abs() < 2e-4, "vT(300K) ≈ 25.9 mV, got {vt}");
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        let a = thermal_voltage(300.0);
        let b = thermal_voltage(600.0);
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
