//! Process corners and temperature points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Classic three-corner process model.
///
/// Corners scale threshold voltage and transconductance of every device
/// flavour coherently; the paper reports typical-corner numbers, so
/// [`Corner::Tt`] is the default everywhere, with FF/SS available for
/// sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Corner {
    /// Typical NMOS, typical PMOS.
    #[default]
    Tt,
    /// Fast–fast: lower Vth, higher mobility — fastest, leakiest.
    Ff,
    /// Slow–slow: higher Vth, lower mobility — slowest, least leaky.
    Ss,
}

impl Corner {
    /// Additive threshold-voltage shift for this corner (V).
    pub fn vth_shift(self) -> f64 {
        match self {
            Corner::Tt => 0.0,
            Corner::Ff => -0.03,
            Corner::Ss => 0.03,
        }
    }

    /// Multiplicative transconductance factor for this corner.
    pub fn k_prime_factor(self) -> f64 {
        match self {
            Corner::Tt => 1.0,
            Corner::Ff => 1.08,
            Corner::Ss => 0.92,
        }
    }

    /// All corners, for sweeps.
    pub const ALL: [Corner; 3] = [Corner::Tt, Corner::Ff, Corner::Ss];
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Corner::Tt => "TT",
            Corner::Ff => "FF",
            Corner::Ss => "SS",
        };
        f.write_str(s)
    }
}

/// A temperature point, stored in kelvin.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Temperature(f64);

impl Temperature {
    /// Room temperature (27 °C), the default characterization point.
    pub const ROOM: Temperature = Temperature(300.15);

    /// Typical worst-case operating temperature for leakage sign-off.
    pub const HOT: Temperature = Temperature(383.15); // 110 °C

    /// Creates a temperature from kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive and finite.
    pub fn from_kelvin(k: f64) -> Self {
        assert!(k > 0.0 && k.is_finite(), "temperature must be positive");
        Temperature(k)
    }

    /// Creates a temperature from degrees Celsius.
    pub fn from_celsius(c: f64) -> Self {
        Self::from_kelvin(c + 273.15)
    }

    /// Value in kelvin.
    pub fn kelvin(self) -> f64 {
        self.0
    }

    /// Value in degrees Celsius.
    pub fn celsius(self) -> f64 {
        self.0 - 273.15
    }
}

impl Default for Temperature {
    fn default() -> Self {
        Temperature::ROOM
    }
}

impl fmt::Display for Temperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} °C", self.celsius())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_ordering_of_vth() {
        assert!(Corner::Ff.vth_shift() < Corner::Tt.vth_shift());
        assert!(Corner::Tt.vth_shift() < Corner::Ss.vth_shift());
    }

    #[test]
    fn celsius_kelvin_roundtrip() {
        let t = Temperature::from_celsius(110.0);
        assert!((t.kelvin() - 383.15).abs() < 1e-9);
        assert!((t.celsius() - 110.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn negative_kelvin_panics() {
        let _ = Temperature::from_kelvin(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Temperature::ROOM.to_string(), "27.0 °C");
        assert_eq!(Corner::Tt.to_string(), "TT");
    }
}
