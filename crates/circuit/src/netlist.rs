//! Circuit description: nodes and devices.
//!
//! A [`Netlist`] is a flat bag of named devices connecting named nodes.
//! Node 0 is always ground. MOSFETs reference shared
//! [`MosModel`] cards (via [`std::sync::Arc`]) so that
//! a scheme generator can instantiate hundreds of devices against the
//! four flavour cards of the technology without copying them.

use crate::error::CircuitError;
use crate::stimulus::Stimulus;
use lnoc_tech::device::MosModel;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a circuit node. `NodeId(0)` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a device within its netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// The raw index into the netlist device list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A MOSFET instance: four terminals, a shared model card, and a width.
#[derive(Debug, Clone)]
pub struct MosfetSpec {
    /// Drain node.
    pub d: NodeId,
    /// Gate node.
    pub g: NodeId,
    /// Source node.
    pub s: NodeId,
    /// Bulk node.
    pub b: NodeId,
    /// Shared model card.
    pub model: Arc<MosModel>,
    /// Channel width (m).
    pub w: f64,
}

/// The device zoo.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Device {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance (Ω), always positive.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance (F), always positive.
        farads: f64,
    },
    /// Ideal voltage source from `pos` to `neg` with a time recipe.
    VSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Voltage-vs-time recipe.
        stimulus: Stimulus,
    },
    /// A MOSFET (see [`MosfetSpec`]).
    Mosfet(MosfetSpec),
}

/// A named device.
#[derive(Debug, Clone)]
pub struct DeviceEntry {
    /// Instance name (unique by convention, not enforced).
    pub name: String,
    /// The device itself.
    pub device: Device,
}

/// A flat circuit netlist. See the [crate-level docs](crate) for an
/// end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    devices: Vec<DeviceEntry>,
    vsource_order: Vec<DeviceId>,
}

impl Netlist {
    /// The ground node, present in every netlist.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist (containing only ground).
    pub fn new() -> Self {
        let mut nl = Netlist {
            node_names: vec!["0".to_string()],
            name_to_node: HashMap::new(),
            devices: Vec::new(),
            vsource_order: Vec::new(),
        };
        nl.name_to_node.insert("0".to_string(), NodeId(0));
        nl
    }

    /// Returns the node with this name, creating it if needed.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.name_to_node.get(name).copied()
    }

    /// The name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Iterates over all nodes as `(id, name)` pairs, ground first.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &str)> {
        self.node_names
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i), n.as_str()))
    }

    /// Number of voltage sources (MNA branch unknowns).
    pub fn vsource_count(&self) -> usize {
        self.vsource_order.len()
    }

    /// Devices in insertion order.
    pub fn devices(&self) -> &[DeviceEntry] {
        &self.devices
    }

    /// The MNA branch index (0-based among sources) of a voltage source.
    pub fn branch_index(&self, id: DeviceId) -> Option<usize> {
        self.vsource_order.iter().position(|&d| d == id)
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance.
    pub fn resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<DeviceId, CircuitError> {
        if ohms <= 0.0 || !ohms.is_finite() {
            return Err(CircuitError::InvalidValue {
                device: name.to_string(),
                value: ohms,
                constraint: "resistance must be positive and finite",
            });
        }
        Ok(self.push(name, Device::Resistor { a, b, ohms }))
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite capacitance (zero is allowed and
    /// simply never stamps).
    pub fn capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<DeviceId, CircuitError> {
        if farads < 0.0 || !farads.is_finite() {
            return Err(CircuitError::InvalidValue {
                device: name.to_string(),
                value: farads,
                constraint: "capacitance must be non-negative and finite",
            });
        }
        Ok(self.push(name, Device::Capacitor { a, b, farads }))
    }

    /// Adds an ideal voltage source (`pos` − `neg` = stimulus value).
    pub fn vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        stimulus: Stimulus,
    ) -> DeviceId {
        let id = self.push(name, Device::VSource { pos, neg, stimulus });
        self.vsource_order.push(id);
        id
    }

    /// Adds a MOSFET.
    ///
    /// # Errors
    ///
    /// Rejects non-positive width.
    pub fn mosfet(&mut self, name: &str, spec: MosfetSpec) -> Result<DeviceId, CircuitError> {
        if spec.w <= 0.0 || !spec.w.is_finite() {
            return Err(CircuitError::InvalidValue {
                device: name.to_string(),
                value: spec.w,
                constraint: "width must be positive and finite",
            });
        }
        Ok(self.push(name, Device::Mosfet(spec)))
    }

    /// Replaces the stimulus of an existing voltage source — the cheap
    /// way to sweep leakage states without rebuilding the netlist.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a voltage source of this netlist.
    pub fn set_stimulus(&mut self, id: DeviceId, stimulus: Stimulus) {
        let entry = &mut self.devices[id.0];
        match &mut entry.device {
            Device::VSource { stimulus: s, .. } => *s = stimulus,
            _ => panic!("device {} is not a voltage source", entry.name),
        }
    }

    /// Looks up a device by name (linear scan; fine at these sizes).
    pub fn find_device(&self, name: &str) -> Option<DeviceId> {
        self.devices
            .iter()
            .position(|d| d.name == name)
            .map(DeviceId)
    }

    /// The entry for a device id.
    pub fn device(&self, id: DeviceId) -> &DeviceEntry {
        &self.devices[id.0]
    }

    /// Iterates over all MOSFETs with their names.
    pub fn mosfets(&self) -> impl Iterator<Item = (&str, &MosfetSpec)> {
        self.devices.iter().filter_map(|e| match &e.device {
            Device::Mosfet(m) => Some((e.name.as_str(), m)),
            _ => None,
        })
    }

    /// Sum of all capacitance hanging on a node (useful for energy
    /// estimates and sanity checks).
    pub fn capacitance_on(&self, node: NodeId) -> f64 {
        self.devices
            .iter()
            .map(|e| match &e.device {
                Device::Capacitor { a, b, farads } if *a == node || *b == node => *farads,
                _ => 0.0,
            })
            .sum()
    }

    fn push(&mut self, name: &str, device: Device) -> DeviceId {
        let id = DeviceId(self.devices.len());
        self.devices.push(DeviceEntry {
            name: name.to_string(),
            device,
        });
        id
    }

    /// Emits the netlist in a SPICE-compatible flavour (for the Figure
    /// 1–3 schematic exports and for debugging against external tools).
    pub fn to_spice(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "* {title}");
        for entry in &self.devices {
            let name = &entry.name;
            match &entry.device {
                Device::Resistor { a, b, ohms } => {
                    let _ = writeln!(
                        out,
                        "R{name} {} {} {ohms:.6e}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                }
                Device::Capacitor { a, b, farads } => {
                    let _ = writeln!(
                        out,
                        "C{name} {} {} {farads:.6e}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                }
                Device::VSource { pos, neg, stimulus } => {
                    let _ = writeln!(
                        out,
                        "V{name} {} {} {:.6e}",
                        self.node_name(*pos),
                        self.node_name(*neg),
                        stimulus.dc_value()
                    );
                }
                Device::Mosfet(m) => {
                    let flavour =
                        format!("{:?}_{:?}", m.model.polarity(), m.model.vt_class()).to_lowercase();
                    let _ = writeln!(
                        out,
                        "M{name} {} {} {} {} {flavour} W={:.4e} L={:.4e}",
                        self.node_name(m.d),
                        self.node_name(m.g),
                        self.node_name(m.s),
                        self.node_name(m.b),
                        m.w,
                        m.model.params().length,
                    );
                }
            }
        }
        let _ = writeln!(out, ".end");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnoc_tech::device::{Polarity, VtClass};
    use lnoc_tech::node45::Node45;

    #[test]
    fn ground_exists_and_is_node_zero() {
        let nl = Netlist::new();
        assert_eq!(nl.node_count(), 1);
        assert!(Netlist::GROUND.is_ground());
        assert_eq!(nl.node_name(Netlist::GROUND), "0");
    }

    #[test]
    fn node_is_idempotent() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        assert_eq!(a, a2);
        assert_eq!(nl.node_count(), 2);
    }

    #[test]
    fn rejects_bad_component_values() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        assert!(nl.resistor("R1", a, Netlist::GROUND, 0.0).is_err());
        assert!(nl.resistor("R1", a, Netlist::GROUND, -1.0).is_err());
        assert!(nl.capacitor("C1", a, Netlist::GROUND, -1e-15).is_err());
        assert!(nl.capacitor("C0", a, Netlist::GROUND, 0.0).is_ok());
    }

    #[test]
    fn branch_indices_follow_insertion_order() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let v1 = nl.vsource("V1", a, Netlist::GROUND, Stimulus::dc(1.0));
        let _r = nl.resistor("R", a, b, 1e3).unwrap();
        let v2 = nl.vsource("V2", b, Netlist::GROUND, Stimulus::dc(0.0));
        assert_eq!(nl.branch_index(v1), Some(0));
        assert_eq!(nl.branch_index(v2), Some(1));
        assert_eq!(nl.vsource_count(), 2);
    }

    #[test]
    fn set_stimulus_replaces() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let v = nl.vsource("V", a, Netlist::GROUND, Stimulus::dc(0.0));
        nl.set_stimulus(v, Stimulus::dc(1.0));
        match &nl.device(v).device {
            Device::VSource { stimulus, .. } => assert_eq!(stimulus.dc_value(), 1.0),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "not a voltage source")]
    fn set_stimulus_on_resistor_panics() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor("R", a, Netlist::GROUND, 1e3).unwrap();
        nl.set_stimulus(r, Stimulus::dc(1.0));
    }

    #[test]
    fn spice_export_contains_all_devices() {
        let tech = Node45::tt();
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.vsource("DD", d, Netlist::GROUND, Stimulus::dc(1.0));
        nl.resistor("load", d, g, 2.0e3).unwrap();
        nl.mosfet(
            "M1",
            MosfetSpec {
                d,
                g,
                s: Netlist::GROUND,
                b: Netlist::GROUND,
                model: Arc::new(tech.mos(Polarity::Nmos, VtClass::Nominal)),
                w: 450e-9,
            },
        )
        .unwrap();
        let spice = nl.to_spice("test");
        assert!(spice.contains("* test"));
        assert!(spice.contains("Rload"));
        assert!(spice.contains("MM1"));
        assert!(spice.contains("nmos_nominal"));
        assert!(spice.ends_with(".end\n"));
    }

    #[test]
    fn capacitance_on_node_sums() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.capacitor("C1", a, Netlist::GROUND, 10e-15).unwrap();
        nl.capacitor("C2", a, b, 5e-15).unwrap();
        nl.capacitor("C3", b, Netlist::GROUND, 7e-15).unwrap();
        assert!((nl.capacitance_on(a) - 15e-15).abs() < 1e-21);
        assert!((nl.capacitance_on(b) - 12e-15).abs() < 1e-21);
    }

    #[test]
    fn find_device_by_name() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let id = nl.resistor("Rx", a, Netlist::GROUND, 50.0).unwrap();
        assert_eq!(nl.find_device("Rx"), Some(id));
        assert_eq!(nl.find_device("nope"), None);
    }
}
