//! Sparse linear algebra for the MNA solve path: a compressed-sparse-column
//! pattern fixed per [`crate::netlist::Netlist`], and an LU factorization
//! that separates the expensive, pattern-discovering *first* factorization
//! from cheap numeric *refactorizations* that reuse the pivot order and the
//! fill pattern.
//!
//! Crossbar-slice MNA matrices are > 90 % zeros, and the Newton/transient
//! loops solve the *same structure* thousands of times with only the MOSFET
//! entries changing. The first factorization therefore runs left-looking
//! Gilbert–Peierls LU with threshold partial pivoting (pattern + pivot
//! sequence discovered once); every subsequent solve replays the stored
//! elimination sequence on the new values in O(factor-flops) — no pivot
//! search, no pattern work, no allocation. A stability monitor falls back to
//! a fresh pivoting factorization when the cached pivot sequence degrades.
//!
//! Below [`DENSE_SPARSE_CROSSOVER`] unknowns the dense kernel in
//! [`crate::linear`] wins (less indexing overhead); the automatic solver
//! selection in [`crate::dc`] uses that threshold.

use crate::error::CircuitError;

/// System dimension below which the dense LU path is used by the automatic
/// solver selection. Determined empirically with
/// `cargo bench --bench circuit_engine` (`lu/*` group): around this size the
/// dense factorization's tight loops beat the sparse kernel's indirect
/// indexing. Tune here if a different host disagrees — correctness is
/// unaffected either way.
pub const DENSE_SPARSE_CROSSOVER: usize = 20;

/// Threshold-pivoting preference: the structural diagonal is kept as the
/// pivot when it is within this factor of the column maximum, which keeps
/// fill low and the pivot sequence stable across refactorizations.
const PIVOT_TOL: f64 = 0.1;

/// A refactorization pivot must stay within this factor of its column
/// maximum, or the cached pivot sequence is declared stale.
const REFACTOR_TOL: f64 = 1.0e-3;

/// Magnitude below which a pivot is singular to working precision (matches
/// the dense kernel's threshold).
const PIVOT_FLOOR: f64 = 1.0e-300;

/// An immutable compressed-sparse-column nonzero pattern.
///
/// Built once per netlist from the set of structurally-nonzero positions;
/// value arrays are stored separately (see [`crate::assemble::Assembler`])
/// so one pattern can serve many matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscPattern {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl CscPattern {
    /// Builds a pattern from `(row, col)` positions (duplicates are fine).
    ///
    /// # Panics
    ///
    /// Panics if any position is out of `n × n` range.
    pub fn from_positions(n: usize, positions: &[(usize, usize)]) -> Self {
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(r, c) in positions {
            assert!(r < n && c < n, "position ({r}, {c}) outside {n}×{n}");
            cols[c].push(r);
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for col in &mut cols {
            col.sort_unstable();
            col.dedup();
            row_idx.extend_from_slice(col);
            col_ptr.push(row_idx.len());
        }
        CscPattern {
            n,
            col_ptr,
            row_idx,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The value-array slot of position `(row, col)`, if structural.
    pub fn slot(&self, row: usize, col: usize) -> Option<usize> {
        let range = self.col_ptr[col]..self.col_ptr[col + 1];
        self.row_idx[range.clone()]
            .binary_search(&row)
            .ok()
            .map(|off| range.start + off)
    }

    /// Slot range of one column.
    #[inline]
    pub fn col_range(&self, col: usize) -> std::ops::Range<usize> {
        self.col_ptr[col]..self.col_ptr[col + 1]
    }

    /// Row indices of one column.
    #[inline]
    pub fn col_rows(&self, col: usize) -> &[usize] {
        &self.row_idx[self.col_range(col)]
    }

    /// Dense `y = A·x` with the given value array (used for residuals).
    ///
    /// # Panics
    ///
    /// Debug-asserts matching dimensions.
    pub fn mul_vec_into(&self, values: &[f64], x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(values.len(), self.nnz());
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for (col, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for k in self.col_range(col) {
                y[self.row_idx[k]] += values[k] * xj;
            }
        }
    }

    /// Expands `(pattern, values)` into a dense [`crate::linear::Matrix`]
    /// (oracle/test helper).
    pub fn to_dense(&self, values: &[f64]) -> crate::linear::Matrix {
        let mut m = crate::linear::Matrix::zeros(self.n);
        for col in 0..self.n {
            for k in self.col_range(col) {
                m.add(self.row_idx[k], col, values[k]);
            }
        }
        m
    }
}

/// Sentinel for "row not yet pivotal" during factorization.
const UNPIVOTED: usize = usize::MAX;

/// Reverse Cuthill–McKee ordering of the symmetrized pattern `A + Aᵀ`:
/// a bandwidth-reducing permutation that keeps LU fill low for the
/// wire-ladder-plus-branch-row structure of MNA matrices (measured ≈ 2–3×
/// fewer factor nonzeros than natural order on crossbar slices).
fn rcm_order(pattern: &CscPattern) -> Vec<usize> {
    let n = pattern.dim();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for col in 0..n {
        for &row in pattern.col_rows(col) {
            if row != col {
                adj[row].push(col);
                adj[col].push(row);
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    let deg: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Components are entered from their minimum-degree node (a cheap
    // stand-in for a pseudo-peripheral search; fine at these sizes).
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_unstable_by_key(|&i| deg[i]);
    let mut queue = std::collections::VecDeque::new();
    let mut neighbours = Vec::new();
    for &start in &seeds {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbours.clear();
            neighbours.extend(adj[u].iter().copied().filter(|&v| !visited[v]));
            neighbours.sort_unstable_by_key(|&v| deg[v]);
            for &v in &neighbours {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    order
}

/// Sparse LU factors with a reusable pivot sequence.
///
/// Lifecycle: [`SparseLu::factorize`] discovers pattern + pivots (call once
/// per structure); [`SparseLu::refactorize`] replays them on new values
/// (call per Newton iteration / transient step); [`SparseLu::solve_in_place`]
/// applies the factors. `refactorize` transparently falls back to a full
/// factorization when its stability monitor trips, so callers can treat it
/// as "factorize, but usually much cheaper".
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    // L: unit lower triangular, one column per pivot step. Row indices are
    // *original* (unpermuted) rows; the first entry of each column is the
    // pivot row with value 1.0.
    lp: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<f64>,
    // U: upper triangular in pivot-position space; the diagonal entry is
    // stored *last* in each column, preceding entries keep the exact
    // (topological) order the factorization eliminated in, which is what
    // makes the refactorization replay correct.
    up: Vec<usize>,
    ui: Vec<usize>,
    ux: Vec<f64>,
    /// `pinv[orig_row] = pivot position` (UNPIVOTED while factoring).
    pinv: Vec<usize>,
    /// `piv_row[pivot position] = orig_row`.
    piv_row: Vec<usize>,
    /// Fill-reducing column order: pivot step `k` factors original column
    /// `q[k]` (RCM of the symmetrized pattern).
    q: Vec<usize>,
    /// Dense numeric scratch.
    x: Vec<f64>,
    /// DFS visit stamps (generation-tagged to avoid clearing).
    visited: Vec<usize>,
    /// DFS scratch: output pattern, node stack, per-node child cursors.
    xi: Vec<usize>,
    stack_nodes: Vec<usize>,
    stack_ptrs: Vec<usize>,
    factored: bool,
    /// Count of full (pivot-searching) factorizations performed.
    full_factorizations: usize,
}

impl SparseLu {
    /// Creates an engine for `n × n` systems (no factors yet).
    pub fn new(n: usize) -> Self {
        SparseLu {
            n,
            lp: Vec::new(),
            li: Vec::new(),
            lx: Vec::new(),
            up: Vec::new(),
            ui: Vec::new(),
            ux: Vec::new(),
            pinv: vec![UNPIVOTED; n],
            piv_row: vec![0; n],
            q: Vec::new(),
            x: vec![0.0; n],
            visited: vec![0; n],
            xi: vec![0; n],
            stack_nodes: vec![0; n],
            stack_ptrs: vec![0; n],
            factored: false,
            full_factorizations: 0,
        }
    }

    /// Whether factors are available for [`SparseLu::solve_in_place`].
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// How many times the full pivot-searching factorization ran (1 after
    /// the first factorize; grows only when the stability fallback trips).
    pub fn full_factorization_count(&self) -> usize {
        self.full_factorizations
    }

    /// Stored factor nonzeros `(nnz(L), nnz(U))` — fill diagnostics.
    pub fn factor_nnz(&self) -> (usize, usize) {
        (self.li.len(), self.ui.len())
    }

    /// Full left-looking LU with threshold partial pivoting. Discovers the
    /// fill pattern and pivot sequence; call once per structure (or let
    /// [`SparseLu::refactorize`] fall back here on demand).
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularMatrix`] when a column has no usable pivot.
    ///
    /// # Panics
    ///
    /// Panics if `pattern`/`values` dimensions disagree with `n`.
    pub fn factorize(&mut self, pattern: &CscPattern, values: &[f64]) -> Result<(), CircuitError> {
        let n = self.n;
        assert_eq!(pattern.dim(), n);
        assert_eq!(values.len(), pattern.nnz());
        self.full_factorizations += 1;
        self.factored = false;
        self.lp.clear();
        self.li.clear();
        self.lx.clear();
        self.up.clear();
        self.ui.clear();
        self.ux.clear();
        self.lp.push(0);
        self.up.push(0);
        self.pinv.fill(UNPIVOTED);
        self.x.fill(0.0);
        self.visited.fill(0);
        self.q = rcm_order(pattern);

        for k in 0..n {
            let col = self.q[k];
            // --- Symbolic: pattern of x = L \ A(:,col) via DFS reach.
            let gen = k + 1;
            let mut top = n;
            for &row in pattern.col_rows(col) {
                if self.visited[row] != gen {
                    top = self.dfs(row, gen, top);
                }
            }

            // --- Numeric sparse triangular solve over the reach, which the
            // DFS emitted in topological order.
            for p in top..n {
                self.x[self.xi[p]] = 0.0;
            }
            for slot in pattern.col_range(col) {
                self.x[pattern.col_rows(col)[slot - pattern.col_range(col).start]] = values[slot];
            }
            for p in top..n {
                let i = self.xi[p];
                let jcol = self.pinv[i];
                if jcol == UNPIVOTED {
                    continue;
                }
                let xj = self.x[i];
                if xj != 0.0 {
                    for q in (self.lp[jcol] + 1)..self.lp[jcol + 1] {
                        self.x[self.li[q]] -= self.lx[q] * xj;
                    }
                }
            }

            // --- Pivot: column max among not-yet-pivotal rows, with a
            // preference for the structural diagonal.
            let mut ipiv = UNPIVOTED;
            let mut amax = 0.0_f64;
            for p in top..n {
                let i = self.xi[p];
                if self.pinv[i] == UNPIVOTED {
                    let t = self.x[i].abs();
                    if t > amax {
                        amax = t;
                        ipiv = i;
                    }
                }
            }
            if ipiv == UNPIVOTED || amax < PIVOT_FLOOR {
                return Err(CircuitError::SingularMatrix { row: k });
            }
            // Prefer the structural diagonal of the permuted matrix (row
            // `col`, since the column permutation is symmetric).
            if self.pinv[col] == UNPIVOTED && self.x[col].abs() >= PIVOT_TOL * amax {
                ipiv = col;
            }
            let pivot = self.x[ipiv];

            // --- Emit U column k (elimination order preserved), diagonal
            // last.
            for p in top..n {
                let i = self.xi[p];
                let pos = self.pinv[i];
                if pos != UNPIVOTED {
                    self.ui.push(pos);
                    self.ux.push(self.x[i]);
                }
            }
            self.ui.push(k);
            self.ux.push(pivot);
            self.up.push(self.ui.len());

            // --- Emit L column k: pivot row first (unit), then the rest.
            self.pinv[ipiv] = k;
            self.piv_row[k] = ipiv;
            self.li.push(ipiv);
            self.lx.push(1.0);
            for p in top..n {
                let i = self.xi[p];
                if self.pinv[i] == UNPIVOTED {
                    self.li.push(i);
                    self.lx.push(self.x[i] / pivot);
                }
            }
            self.lp.push(self.li.len());

            for p in top..n {
                self.x[self.xi[p]] = 0.0;
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Iterative DFS from `start` through the partially-built L (rows map
    /// to columns via `pinv`), emitting the reach into `xi[new_top..old_top]`
    /// in topological order. Returns the new top.
    fn dfs(&mut self, start: usize, gen: usize, mut top: usize) -> usize {
        let mut head: usize = 0;
        self.stack_nodes[0] = start;
        loop {
            let i = self.stack_nodes[head];
            let jcol = self.pinv[i];
            if self.visited[i] != gen {
                self.visited[i] = gen;
                self.stack_ptrs[head] = if jcol == UNPIVOTED {
                    0
                } else {
                    // Skip the unit-diagonal (pivot-row) leading entry.
                    self.lp[jcol] + 1
                };
            }
            let mut descended = false;
            if jcol != UNPIVOTED {
                let end = self.lp[jcol + 1];
                let mut p = self.stack_ptrs[head];
                while p < end {
                    let child = self.li[p];
                    if self.visited[child] != gen {
                        self.stack_ptrs[head] = p + 1;
                        head += 1;
                        self.stack_nodes[head] = child;
                        descended = true;
                        break;
                    }
                    p += 1;
                }
                if !descended {
                    self.stack_ptrs[head] = end;
                }
            }
            if !descended {
                top -= 1;
                self.xi[top] = i;
                if head == 0 {
                    break;
                }
                head -= 1;
            }
        }
        top
    }

    /// Numeric refactorization: replays the stored elimination sequence on
    /// new `values` (same `pattern`). Falls back to [`SparseLu::factorize`]
    /// when no factors exist yet or the stability monitor finds the cached
    /// pivot sequence degraded on the new values.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularMatrix`] if the fallback factorization also
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `pattern`/`values` dimensions disagree with `n`.
    pub fn refactorize(
        &mut self,
        pattern: &CscPattern,
        values: &[f64],
    ) -> Result<(), CircuitError> {
        if !self.factored {
            return self.factorize(pattern, values);
        }
        match self.refactor_inner(pattern, values) {
            Ok(()) => Ok(()),
            // Stale pivots: redo the full pivot search.
            Err(()) => self.factorize(pattern, values),
        }
    }

    /// The replay; `Err(())` signals a stability/singularity trip.
    fn refactor_inner(&mut self, pattern: &CscPattern, values: &[f64]) -> Result<(), ()> {
        let n = self.n;
        assert_eq!(pattern.dim(), n);
        assert_eq!(values.len(), pattern.nnz());
        // x is all-zero here: factorize and prior refactor passes clear
        // every touched entry before moving on.
        for k in 0..n {
            let col = self.q[k];
            let col_range = pattern.col_range(col);
            let rows = pattern.col_rows(col);
            for (off, slot) in col_range.enumerate() {
                self.x[rows[off]] = values[slot];
            }
            let u_start = self.up[k];
            let u_diag = self.up[k + 1] - 1;
            for p in u_start..u_diag {
                let j = self.ui[p];
                let xj = self.x[self.piv_row[j]];
                self.ux[p] = xj;
                if xj != 0.0 {
                    for q in (self.lp[j] + 1)..self.lp[j + 1] {
                        self.x[self.li[q]] -= self.lx[q] * xj;
                    }
                }
            }
            let pivot = self.x[self.piv_row[k]];
            // Stability monitor: the pivot must not be dwarfed by the
            // entries it is about to divide.
            let mut col_max = pivot.abs();
            for q in (self.lp[k] + 1)..self.lp[k + 1] {
                col_max = col_max.max(self.x[self.li[q]].abs());
            }
            if pivot.abs() < PIVOT_FLOOR || pivot.abs() < REFACTOR_TOL * col_max {
                // Clear scratch before bailing so a retry starts clean.
                for p in u_start..u_diag {
                    self.x[self.piv_row[self.ui[p]]] = 0.0;
                }
                for q in self.lp[k]..self.lp[k + 1] {
                    self.x[self.li[q]] = 0.0;
                }
                return Err(());
            }
            self.ux[u_diag] = pivot;
            self.lx[self.lp[k]] = 1.0;
            for q in (self.lp[k] + 1)..self.lp[k + 1] {
                self.lx[q] = self.x[self.li[q]] / pivot;
            }
            // Clear every touched scratch entry (the x-pattern of this
            // column is exactly: U-entry pivot rows ∪ L-column rows).
            for p in u_start..u_diag {
                self.x[self.piv_row[self.ui[p]]] = 0.0;
            }
            for q in self.lp[k]..self.lp[k + 1] {
                self.x[self.li[q]] = 0.0;
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` with the current factors, overwriting `b`.
    ///
    /// # Panics
    ///
    /// Panics if no factorization is available or `b` has the wrong length.
    pub fn solve_in_place(&mut self, b: &mut [f64]) {
        assert!(self.factored, "solve before factorize");
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Row-permute: y = P·b.
        for k in 0..n {
            self.x[k] = b[self.piv_row[k]];
        }
        // Forward solve L·z = y (unit diagonal; entries stored by original
        // row, mapped through pinv).
        for k in 0..n {
            let xk = self.x[k];
            if xk != 0.0 {
                for q in (self.lp[k] + 1)..self.lp[k + 1] {
                    self.x[self.pinv[self.li[q]]] -= self.lx[q] * xk;
                }
            }
        }
        // Backward solve U·x = z (diagonal stored last per column).
        for k in (0..n).rev() {
            let diag = self.ux[self.up[k + 1] - 1];
            let xk = self.x[k] / diag;
            self.x[k] = xk;
            if xk != 0.0 {
                for p in self.up[k]..self.up[k + 1] - 1 {
                    self.x[self.ui[p]] -= self.ux[p] * xk;
                }
            }
        }
        // Undo the fill-reducing column permutation: step k solved for
        // original unknown q[k].
        for k in 0..n {
            b[self.q[k]] = self.x[k];
        }
        self.x.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream for test matrices.
    struct Prng(u64);
    impl Prng {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        }
    }

    /// Builds a random sparse diagonally-dominant system.
    fn random_system(n: usize, seed: u64) -> (CscPattern, Vec<f64>) {
        let mut rng = Prng(seed);
        let mut positions = Vec::new();
        for i in 0..n {
            positions.push((i, i));
            // A few off-diagonal couplings per row, banded-ish like MNA.
            for d in 1..4usize {
                if i + d < n {
                    positions.push((i, i + d));
                    positions.push((i + d, i));
                }
            }
        }
        let pattern = CscPattern::from_positions(n, &positions);
        let mut values = vec![0.0; pattern.nnz()];
        for col in 0..n {
            for k in pattern.col_range(col) {
                let row = pattern.col_rows(col)[k - pattern.col_range(col).start];
                values[k] = if row == col {
                    8.0 + rng.next_f64().abs()
                } else {
                    rng.next_f64()
                };
            }
        }
        (pattern, values)
    }

    #[test]
    fn pattern_slots_and_spmv() {
        let p = CscPattern::from_positions(3, &[(0, 0), (1, 0), (2, 2), (0, 2), (1, 0)]);
        assert_eq!(p.nnz(), 4);
        assert!(p.slot(0, 0).is_some());
        assert!(p.slot(1, 0).is_some());
        assert!(p.slot(2, 1).is_none());
        let mut values = vec![0.0; p.nnz()];
        values[p.slot(0, 0).unwrap()] = 2.0;
        values[p.slot(1, 0).unwrap()] = -1.0;
        values[p.slot(0, 2).unwrap()] = 3.0;
        values[p.slot(2, 2).unwrap()] = 4.0;
        let mut y = vec![0.0; 3];
        p.mul_vec_into(&values, &[1.0, 5.0, 2.0], &mut y);
        assert_eq!(y, vec![2.0 + 6.0, -1.0, 8.0]);
    }

    #[test]
    fn sparse_matches_dense_on_random_systems() {
        for seed in 0..20 {
            let n = 5 + (seed as usize % 40);
            let (pattern, values) = random_system(n, 1000 + seed);
            let dense = pattern.to_dense(&values);
            let mut rng = Prng(seed);
            let x_true: Vec<f64> = (0..n).map(|_| rng.next_f64() * 3.0).collect();
            let b = dense.mul_vec(&x_true);

            let mut lu = SparseLu::new(n);
            lu.factorize(&pattern, &values).unwrap();
            let mut x = b.clone();
            lu.solve_in_place(&mut x);
            for (a, t) in x.iter().zip(&x_true) {
                assert!((a - t).abs() < 1e-9, "seed {seed}: {a} vs {t}");
            }
        }
    }

    #[test]
    fn refactorize_tracks_new_values() {
        let (pattern, mut values) = random_system(30, 42);
        let mut lu = SparseLu::new(30);
        lu.factorize(&pattern, &values).unwrap();
        // Perturb values (keeping dominance) and refactor several times.
        for round in 1..=5 {
            for v in values.iter_mut() {
                *v *= 1.0 + 0.01 * round as f64;
            }
            lu.refactorize(&pattern, &values).unwrap();
            let dense = pattern.to_dense(&values);
            let x_true: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut x = dense.mul_vec(&x_true);
            lu.solve_in_place(&mut x);
            for (a, t) in x.iter().zip(&x_true) {
                assert!((a - t).abs() < 1e-9, "round {round}: {a} vs {t}");
            }
        }
        assert_eq!(
            lu.full_factorization_count(),
            1,
            "replays must not re-pivot"
        );
    }

    #[test]
    fn refactorize_falls_back_when_pivots_go_stale() {
        // Factor with a dominant diagonal, then hand it a matrix whose
        // dominant entries moved off-diagonal: the monitor must trip and the
        // fallback must still solve correctly.
        let pattern = CscPattern::from_positions(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let mut v = vec![0.0; 4];
        let set = |v: &mut Vec<f64>, p: &CscPattern, r, c, val| {
            v[p.slot(r, c).unwrap()] = val;
        };
        set(&mut v, &pattern, 0, 0, 10.0);
        set(&mut v, &pattern, 0, 1, 1.0);
        set(&mut v, &pattern, 1, 0, 1.0);
        set(&mut v, &pattern, 1, 1, 10.0);
        let mut lu = SparseLu::new(2);
        lu.factorize(&pattern, &v).unwrap();

        set(&mut v, &pattern, 0, 0, 1.0e-9);
        set(&mut v, &pattern, 0, 1, 1.0);
        set(&mut v, &pattern, 1, 0, 1.0);
        set(&mut v, &pattern, 1, 1, 1.0e-9);
        lu.refactorize(&pattern, &v).unwrap();
        assert!(lu.full_factorization_count() >= 2, "monitor should trip");
        let mut b = vec![2.0, 7.0];
        lu.solve_in_place(&mut b);
        // x ≈ [7, 2] for the near-permutation matrix.
        assert!((b[0] - 7.0).abs() < 1e-6, "{b:?}");
        assert!((b[1] - 2.0).abs() < 1e-6, "{b:?}");
    }

    #[test]
    fn permutation_matrix_requires_pivoting() {
        let pattern = CscPattern::from_positions(2, &[(0, 1), (1, 0), (0, 0), (1, 1)]);
        let mut v = vec![0.0; pattern.nnz()];
        v[pattern.slot(0, 1).unwrap()] = 1.0;
        v[pattern.slot(1, 0).unwrap()] = 1.0;
        let mut lu = SparseLu::new(2);
        lu.factorize(&pattern, &v).unwrap();
        let mut b = vec![2.0, 7.0];
        lu.solve_in_place(&mut b);
        assert!((b[0] - 7.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let pattern = CscPattern::from_positions(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let mut v = vec![0.0; 4];
        v[pattern.slot(0, 0).unwrap()] = 1.0;
        v[pattern.slot(0, 1).unwrap()] = 2.0;
        v[pattern.slot(1, 0).unwrap()] = 2.0;
        v[pattern.slot(1, 1).unwrap()] = 4.0;
        let mut lu = SparseLu::new(2);
        assert!(matches!(
            lu.factorize(&pattern, &v),
            Err(CircuitError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn matches_dense_solver_exactly_enough() {
        // Same system through both kernels; compare solutions directly.
        let (pattern, values) = random_system(60, 7);
        let dense = pattern.to_dense(&values);
        let b: Vec<f64> = (0..60).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();

        let mut xd = b.clone();
        dense.clone().solve_in_place(&mut xd).unwrap();

        let mut lu = SparseLu::new(60);
        lu.factorize(&pattern, &values).unwrap();
        let mut xs = b;
        lu.solve_in_place(&mut xs);

        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-9, "{d} vs {s}");
        }
    }
}
