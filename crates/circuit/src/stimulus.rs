//! Time-varying source descriptions.
//!
//! Every voltage source in a [`crate::netlist::Netlist`] carries a
//! `Stimulus` evaluated at each time point. DC analysis evaluates at
//! `t = 0` unless a source opts into its final value via
//! [`Stimulus::dc_value`] semantics (DC uses the *initial* value; the
//! transient engine owns time evolution).

use serde::{Deserialize, Serialize};

/// A voltage-vs-time recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Stimulus {
    /// Constant voltage.
    Dc(f64),
    /// A single step from `from` to `to` at time `at`, with linear ramp
    /// of duration `rise`.
    Step {
        /// Initial level (V).
        from: f64,
        /// Final level (V).
        to: f64,
        /// Step start time (s).
        at: f64,
        /// Ramp duration (s).
        rise: f64,
    },
    /// Periodic pulse train (SPICE PULSE-like).
    Pulse {
        /// Base level (V).
        low: f64,
        /// Pulsed level (V).
        high: f64,
        /// Delay before the first edge (s).
        delay: f64,
        /// Rise time (s).
        rise: f64,
        /// Fall time (s).
        fall: f64,
        /// Time spent at `high` (s).
        width: f64,
        /// Pulse period (s).
        period: f64,
    },
    /// Piece-wise linear: sorted `(time, voltage)` points; constant
    /// extrapolation outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Stimulus {
    /// Constant source.
    pub fn dc(volts: f64) -> Self {
        Stimulus::Dc(volts)
    }

    /// A step from `from` to `to` at time `at` with a default 2 ps ramp.
    pub fn step(from: f64, to: f64, at: f64) -> Self {
        Stimulus::Step {
            from,
            to,
            at,
            rise: 2.0e-12,
        }
    }

    /// A step with an explicit ramp duration.
    pub fn ramp(from: f64, to: f64, at: f64, rise: f64) -> Self {
        Stimulus::Step { from, to, at, rise }
    }

    /// A 50 %-duty clock of the given period starting low, with edge
    /// times of 5 % of the period.
    pub fn clock(low: f64, high: f64, period: f64) -> Self {
        let edge = 0.05 * period;
        Stimulus::Pulse {
            low,
            high,
            delay: 0.5 * period,
            rise: edge,
            fall: edge,
            width: 0.5 * period - edge,
            period,
        }
    }

    /// Value at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Stimulus::Dc(v) => *v,
            Stimulus::Step { from, to, at, rise } => {
                if t <= *at {
                    *from
                } else if t >= at + rise {
                    *to
                } else {
                    from + (to - from) * (t - at) / rise
                }
            }
            Stimulus::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *low;
                }
                let tp = (t - delay) % period;
                if tp < *rise {
                    low + (high - low) * tp / rise
                } else if tp < rise + width {
                    *high
                } else if tp < rise + width + fall {
                    high - (high - low) * (tp - rise - width) / fall
                } else {
                    *low
                }
            }
            Stimulus::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty checked above").1
            }
        }
    }

    /// The value used for the DC operating point (the `t = 0` value).
    pub fn dc_value(&self) -> f64 {
        self.at(0.0)
    }

    /// The earliest time after which the source no longer changes, or
    /// `None` for periodic sources. Used by callers to size analyses.
    pub fn settle_time(&self) -> Option<f64> {
        match self {
            Stimulus::Dc(_) => Some(0.0),
            Stimulus::Step { at, rise, .. } => Some(at + rise),
            Stimulus::Pulse { .. } => None,
            Stimulus::Pwl(points) => points.last().map(|&(t, _)| t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let s = Stimulus::dc(0.7);
        assert_eq!(s.at(0.0), 0.7);
        assert_eq!(s.at(1.0), 0.7);
        assert_eq!(s.dc_value(), 0.7);
    }

    #[test]
    fn step_interpolates_linearly() {
        let s = Stimulus::ramp(0.0, 1.0, 10e-12, 4e-12);
        assert_eq!(s.at(0.0), 0.0);
        assert_eq!(s.at(10e-12), 0.0);
        assert!((s.at(12e-12) - 0.5).abs() < 1e-9);
        assert_eq!(s.at(14e-12), 1.0);
        assert_eq!(s.at(1.0), 1.0);
    }

    #[test]
    fn pulse_is_periodic() {
        let s = Stimulus::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 4e-12,
            period: 10e-12,
        };
        assert!((s.at(2e-12) - 1.0).abs() < 1e-9);
        assert!((s.at(12e-12) - 1.0).abs() < 1e-9);
        assert!(s.at(8e-12) < 1e-9);
        assert!(s.at(18e-12) < 1e-9);
    }

    #[test]
    fn clock_starts_low_and_toggles() {
        let s = Stimulus::clock(0.0, 1.0, 100e-12);
        assert_eq!(s.at(0.0), 0.0);
        assert!(s.at(25e-12) < 0.5, "first half-period stays low");
        assert!(s.at(60e-12) > 0.5, "second half-period is high");
    }

    #[test]
    fn pwl_endpoints_clamp() {
        let s = Stimulus::Pwl(vec![(1e-12, 0.2), (2e-12, 0.8)]);
        assert_eq!(s.at(0.0), 0.2);
        assert!((s.at(1.5e-12) - 0.5).abs() < 1e-9);
        assert_eq!(s.at(5e-12), 0.8);
    }

    #[test]
    fn pwl_empty_is_zero() {
        assert_eq!(Stimulus::Pwl(vec![]).at(1.0), 0.0);
    }

    #[test]
    fn settle_times() {
        assert_eq!(Stimulus::dc(1.0).settle_time(), Some(0.0));
        assert_eq!(Stimulus::step(0.0, 1.0, 5e-12).settle_time(), Some(7e-12));
        assert_eq!(Stimulus::clock(0.0, 1.0, 1e-9).settle_time(), None);
    }
}
