//! Sampled waveforms and the measurements the paper's Table 1 needs:
//! threshold crossings, 50 % propagation delays, slews and integrals.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Edge {
    /// Signal crosses the threshold going up.
    Rising,
    /// Signal crosses the threshold going down.
    Falling,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Edge::Rising => "rising",
            Edge::Falling => "falling",
        })
    }
}

/// A sampled scalar signal vs time, with linear interpolation between
/// samples.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Waveform {
    t: Vec<f64>,
    v: Vec<f64>,
}

impl Waveform {
    /// Builds a waveform from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or time is not
    /// monotonically non-decreasing.
    pub fn new(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "time/value length mismatch");
        assert!(
            t.windows(2).all(|w| w[0] <= w[1]),
            "time axis must be sorted"
        );
        Waveform { t, v }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// `true` when the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Time axis.
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Value axis.
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Final sample value.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn last_value(&self) -> f64 {
        *self.v.last().expect("empty waveform")
    }

    /// First sample value.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn first_value(&self) -> f64 {
        *self.v.first().expect("empty waveform")
    }

    /// Minimum sample value (NaN-free input assumed).
    pub fn min(&self) -> f64 {
        self.v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        self.v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Linear-interpolated value at time `at` (clamped to the ends).
    pub fn value_at(&self, at: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        if at <= self.t[0] {
            return self.v[0];
        }
        if at >= *self.t.last().expect("non-empty") {
            return self.last_value();
        }
        let hi = self.t.partition_point(|&x| x < at);
        let lo = hi - 1;
        let (t0, t1) = (self.t[lo], self.t[hi]);
        let (v0, v1) = (self.v[lo], self.v[hi]);
        if t1 == t0 {
            return v1;
        }
        v0 + (v1 - v0) * (at - t0) / (t1 - t0)
    }

    /// First time after `after` at which the waveform crosses
    /// `threshold` in the given direction, with linear interpolation
    /// within the bracketing interval. `None` if no such crossing.
    pub fn crossing(&self, threshold: f64, edge: Edge, after: f64) -> Option<f64> {
        for i in 1..self.t.len() {
            if self.t[i] <= after {
                continue;
            }
            let (v0, v1) = (self.v[i - 1], self.v[i]);
            let crossed = match edge {
                Edge::Rising => v0 < threshold && v1 >= threshold,
                Edge::Falling => v0 > threshold && v1 <= threshold,
            };
            if crossed {
                let (t0, t1) = (self.t[i - 1], self.t[i]);
                let frac = if v1 == v0 {
                    1.0
                } else {
                    (threshold - v0) / (v1 - v0)
                };
                let t_cross = t0 + frac * (t1 - t0);
                if t_cross > after {
                    return Some(t_cross);
                }
            }
        }
        None
    }

    /// All crossings of `threshold` in the given direction.
    pub fn crossings(&self, threshold: f64, edge: Edge) -> Vec<f64> {
        let mut out = Vec::new();
        let mut after = f64::NEG_INFINITY;
        while let Some(t) = self.crossing(threshold, edge, after) {
            out.push(t);
            after = t;
        }
        out
    }

    /// 10–90 % transition time of an edge that crosses `mid = vdd/2` at
    /// or after `after`. Returns `None` when the edge is incomplete.
    pub fn slew(&self, vdd: f64, edge: Edge, after: f64) -> Option<f64> {
        let (lo, hi) = (0.1 * vdd, 0.9 * vdd);
        match edge {
            Edge::Rising => {
                let t_lo = self.crossing(lo, Edge::Rising, after)?;
                let t_hi = self.crossing(hi, Edge::Rising, t_lo)?;
                Some(t_hi - t_lo)
            }
            Edge::Falling => {
                let t_hi = self.crossing(hi, Edge::Falling, after)?;
                let t_lo = self.crossing(lo, Edge::Falling, t_hi)?;
                Some(t_hi.max(t_lo) - t_hi.min(t_lo))
            }
        }
    }

    /// Trapezoidal integral of the waveform over its whole span.
    pub fn integral(&self) -> f64 {
        self.integral_between(f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Trapezoidal integral over `[from, to]` (clamped to the span).
    pub fn integral_between(&self, from: f64, to: f64) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.t.len() {
            let (t0, t1) = (self.t[i - 1], self.t[i]);
            if t1 <= from || t0 >= to {
                continue;
            }
            let a = t0.max(from);
            let b = t1.min(to);
            let va = self.value_at(a);
            let vb = self.value_at(b);
            acc += 0.5 * (va + vb) * (b - a);
        }
        acc
    }

    /// Pointwise combination of two waveforms sampled on *this*
    /// waveform's time axis (the other is interpolated).
    pub fn combine(&self, other: &Waveform, f: impl Fn(f64, f64) -> f64) -> Waveform {
        let v = self
            .t
            .iter()
            .zip(&self.v)
            .map(|(&t, &v)| f(v, other.value_at(t)))
            .collect();
        Waveform {
            t: self.t.clone(),
            v,
        }
    }
}

/// Measures the 50 %-to-50 % propagation delay between an input edge and
/// the resulting output edge.
///
/// Returns `None` when either crossing is missing.
pub fn propagation_delay(
    input: &Waveform,
    input_edge: Edge,
    output: &Waveform,
    output_edge: Edge,
    vdd: f64,
    after: f64,
) -> Option<f64> {
    let mid = 0.5 * vdd;
    let t_in = input.crossing(mid, input_edge, after)?;
    let t_out = output.crossing(mid, output_edge, t_in)?;
    Some(t_out - t_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0 → 1 V linearly over 10 ns.
        Waveform::new(vec![0.0, 10e-9], vec![0.0, 1.0])
    }

    #[test]
    fn interpolation_midpoint() {
        assert!((ramp().value_at(5e-9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamped_ends() {
        let w = ramp();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(1.0), 1.0);
    }

    #[test]
    fn rising_crossing_found() {
        let t = ramp().crossing(0.3, Edge::Rising, 0.0).unwrap();
        assert!((t - 3e-9).abs() < 1e-15);
    }

    #[test]
    fn falling_crossing_on_rising_signal_is_none() {
        assert!(ramp().crossing(0.3, Edge::Falling, 0.0).is_none());
    }

    #[test]
    fn after_filter_skips_early_crossings() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 1.0, 0.0, 1.0, 0.0]);
        let c = w.crossings(0.5, Edge::Rising);
        assert_eq!(c.len(), 2);
        assert!((c[0] - 0.5).abs() < 1e-12);
        assert!((c[1] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn slew_of_linear_ramp() {
        // 10–90 % of a 10 ns full-swing ramp = 8 ns.
        let s = ramp().slew(1.0, Edge::Rising, 0.0).unwrap();
        assert!((s - 8e-9).abs() < 1e-12);
    }

    #[test]
    fn integral_of_triangle() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]);
        assert!((w.integral() - 1.0).abs() < 1e-12);
        assert!((w.integral_between(0.0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn propagation_delay_simple() {
        let input = Waveform::new(vec![0.0, 1e-12, 2e-12], vec![0.0, 1.0, 1.0]);
        let output = Waveform::new(vec![0.0, 5e-12, 15e-12, 30e-12], vec![1.0, 1.0, 0.0, 0.0]);
        let d = propagation_delay(&input, Edge::Rising, &output, Edge::Falling, 1.0, 0.0).unwrap();
        // Input crosses 0.5 at 0.5 ps; output at 10 ps.
        assert!((d - 9.5e-12).abs() < 1e-15);
    }

    #[test]
    fn combine_subtracts() {
        let a = Waveform::new(vec![0.0, 1.0], vec![2.0, 4.0]);
        let b = Waveform::new(vec![0.0, 1.0], vec![1.0, 1.0]);
        let c = a.combine(&b, |x, y| x - y);
        assert_eq!(c.values(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "time axis must be sorted")]
    fn unsorted_time_panics() {
        let _ = Waveform::new(vec![1.0, 0.0], vec![0.0, 1.0]);
    }
}
