//! Error type for netlist construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced by netlist construction or by the solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A component value was outside its meaningful range.
    InvalidValue {
        /// Device name as given to the builder.
        device: String,
        /// Offending value.
        value: f64,
        /// Constraint description.
        constraint: &'static str,
    },
    /// The Newton iteration failed to converge even with all homotopy
    /// fallbacks (gmin stepping, source stepping).
    NoConvergence {
        /// Analysis that failed (`"dc"` or `"transient"`).
        analysis: &'static str,
        /// Simulation time at failure (s); 0 for DC.
        time: f64,
        /// Residual norm at the final iteration.
        residual: f64,
    },
    /// The MNA matrix became numerically singular.
    SingularMatrix {
        /// Row index at which elimination found no usable pivot.
        row: usize,
    },
    /// A node id did not belong to the netlist being simulated.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidValue {
                device,
                value,
                constraint,
            } => write!(f, "invalid value {value} for device `{device}`: {constraint}"),
            CircuitError::NoConvergence {
                analysis,
                time,
                residual,
            } => write!(
                f,
                "{analysis} analysis failed to converge at t = {time:.3e} s (residual {residual:.3e})"
            ),
            CircuitError::SingularMatrix { row } => {
                write!(f, "singular MNA matrix at elimination row {row}")
            }
            CircuitError::UnknownNode { index } => {
                write!(f, "node index {index} does not belong to this netlist")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }

    #[test]
    fn display_mentions_device() {
        let e = CircuitError::InvalidValue {
            device: "R1".into(),
            value: -5.0,
            constraint: "resistance must be positive",
        };
        assert!(e.to_string().contains("R1"));
    }
}
