//! Static (leakage) analysis on a DC operating point.
//!
//! Given a converged [`DcSolution`], walks every MOSFET and evaluates the
//! technology model's leakage decomposition (channel/subthreshold, gate
//! tunnelling, junction) at the solved node voltages. This is the
//! workhorse behind the paper's *active leakage* and *standby leakage*
//! rows: the crossbar characterizer solves one DC point per
//! grant/data/sleep state and rolls the reports up.

use crate::dc::DcSolution;
use crate::netlist::Netlist;
use lnoc_tech::device::LeakageBreakdown;
use lnoc_tech::units::{Amps, Volts, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Leakage of one device instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceLeakage {
    /// Instance name from the netlist.
    pub name: String,
    /// Component breakdown.
    pub breakdown: LeakageBreakdown,
}

/// Leakage report for a whole netlist in one static state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LeakageReport {
    entries: Vec<DeviceLeakage>,
}

impl LeakageReport {
    /// Per-device entries, in netlist order.
    pub fn entries(&self) -> &[DeviceLeakage] {
        &self.entries
    }

    /// Total channel (subthreshold) leakage.
    pub fn channel(&self) -> Amps {
        Amps(self.entries.iter().map(|e| e.breakdown.channel.0).sum())
    }

    /// Total gate-tunnelling leakage.
    pub fn gate(&self) -> Amps {
        Amps(self.entries.iter().map(|e| e.breakdown.gate.0).sum())
    }

    /// Total junction leakage.
    pub fn junction(&self) -> Amps {
        Amps(self.entries.iter().map(|e| e.breakdown.junction.0).sum())
    }

    /// Grand total leakage current.
    pub fn total(&self) -> Amps {
        Amps(self.channel().0 + self.gate().0 + self.junction().0)
    }

    /// Leakage power at the given supply.
    pub fn power(&self, vdd: Volts) -> Watts {
        Watts(self.total().0 * vdd.0)
    }

    /// The single leakiest device, if any.
    pub fn worst(&self) -> Option<&DeviceLeakage> {
        self.entries.iter().max_by(|a, b| {
            a.breakdown
                .total()
                .0
                .partial_cmp(&b.breakdown.total().0)
                .expect("leakage values are finite")
        })
    }
}

impl fmt::Display for LeakageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "leakage: total {} (channel {}, gate {}, junction {}) over {} devices",
            self.total(),
            self.channel(),
            self.gate(),
            self.junction(),
            self.entries.len()
        )
    }
}

/// Builds the per-device leakage report at a DC operating point.
pub fn leakage_report(nl: &Netlist, dc: &DcSolution) -> LeakageReport {
    let entries = nl
        .mosfets()
        .map(|(name, m)| {
            let vg = dc.voltage(m.g);
            let vd = dc.voltage(m.d);
            let vs = dc.voltage(m.s);
            let vb = dc.voltage(m.b);
            DeviceLeakage {
                name: name.to_string(),
                breakdown: m.model.leakage(m.w, vg, vd, vs, vb),
            }
        })
        .collect();
    LeakageReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc;
    use crate::netlist::MosfetSpec;
    use crate::stimulus::Stimulus;
    use lnoc_tech::device::{Polarity, VtClass};
    use lnoc_tech::node45::Node45;
    use std::sync::Arc;

    fn inverter(vt: VtClass, vin: f64) -> (Netlist, LeakageReport) {
        let tech = Node45::tt();
        let nmos = Arc::new(tech.mos(Polarity::Nmos, vt));
        let pmos = Arc::new(tech.mos(Polarity::Pmos, vt));
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("DD", vdd, Netlist::GROUND, Stimulus::dc(1.0));
        nl.vsource("IN", inp, Netlist::GROUND, Stimulus::dc(vin));
        nl.mosfet(
            "MP",
            MosfetSpec {
                d: out,
                g: inp,
                s: vdd,
                b: vdd,
                model: pmos,
                w: 900e-9,
            },
        )
        .unwrap();
        nl.mosfet(
            "MN",
            MosfetSpec {
                d: out,
                g: inp,
                s: Netlist::GROUND,
                b: Netlist::GROUND,
                model: nmos,
                w: 450e-9,
            },
        )
        .unwrap();
        let sol = dc::solve(&nl).unwrap();
        let report = leakage_report(&nl, &sol);
        (nl, report)
    }

    #[test]
    fn report_covers_all_mosfets() {
        let (_, report) = inverter(VtClass::Nominal, 0.0);
        assert_eq!(report.entries().len(), 2);
    }

    #[test]
    fn high_vt_inverter_leaks_less() {
        let (_, lo) = inverter(VtClass::Nominal, 0.0);
        let (_, hi) = inverter(VtClass::High, 0.0);
        assert!(
            hi.total().0 < 0.5 * lo.total().0,
            "high-Vt {} vs nominal {}",
            hi.total(),
            lo.total()
        );
    }

    #[test]
    fn power_scales_with_vdd() {
        let (_, report) = inverter(VtClass::Nominal, 0.0);
        let p1 = report.power(Volts(1.0));
        let p2 = report.power(Volts(2.0));
        assert!((p2.0 / p1.0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worst_device_is_the_off_one() {
        // Input low: NMOS is off and subthreshold-leaking with full Vds;
        // the PMOS is on (no channel leakage, only gate).
        let (_, report) = inverter(VtClass::Nominal, 0.0);
        let worst = report.worst().unwrap();
        // Whichever wins, totals must be positive and finite.
        assert!(worst.breakdown.total().0 > 0.0);
        assert!(worst.breakdown.total().0.is_finite());
    }

    #[test]
    fn display_mentions_counts() {
        let (_, report) = inverter(VtClass::Nominal, 0.0);
        let s = report.to_string();
        assert!(s.contains("2 devices"));
    }
}
