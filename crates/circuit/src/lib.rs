//! # lnoc-circuit — a small MNA circuit simulator
//!
//! This crate replaces the SPICE runs of the DATE 2005 paper with an
//! in-repo modified-nodal-analysis engine sized for the circuits at hand
//! (crossbar slices of a few dozen devices):
//!
//! * [`netlist`] — circuit description: named nodes, resistors,
//!   capacitors, voltage sources with time-varying [`stimulus`], and
//!   MOSFETs referencing [`lnoc_tech::device::MosModel`] cards.
//! * [`linear`] — dense LU decomposition with partial pivoting (the MNA
//!   systems here are ≲ a few hundred unknowns; no external linear
//!   algebra needed).
//! * [`sparse`] — CSC sparsity pattern fixed per netlist and an LU whose
//!   pivot order / fill pattern are discovered once and *refactorized*
//!   numerically on every subsequent solve — the fast path for the
//!   > 90 %-zero crossbar-slice systems.
//! * [`assemble`] — two-phase assembly: constant stamps (resistors, gmin,
//!   source incidence, capacitor companions) cached and `memcpy`'d per
//!   iteration; only MOSFET entries are re-evaluated.
//! * [`dc`] — Newton–Raphson operating-point solver with gmin stepping
//!   and voltage-step damping, selectable between the fast
//!   sparse/dense engines and the original reference kernel
//!   ([`dc::SolverKind`]).
//! * [`transient`] — backward-Euler time stepping (robust and
//!   non-oscillatory for digital switching waveforms) on top of the same
//!   Newton kernel.
//! * [`waveform`] — sampled waveforms with threshold-crossing, delay,
//!   slew and integral measurements.
//! * [`analysis`] — static leakage reports (per-device subthreshold /
//!   gate / junction breakdown) on a DC solution.
//!
//! ## Example: RC step response
//!
//! ```
//! use lnoc_circuit::netlist::Netlist;
//! use lnoc_circuit::stimulus::Stimulus;
//! use lnoc_circuit::transient::TransientSpec;
//!
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let vout = nl.node("out");
//! nl.vsource("VIN", vin, Netlist::GROUND, Stimulus::step(0.0, 1.0, 10.0e-12));
//! nl.resistor("R", vin, vout, 1.0e3).unwrap();
//! nl.capacitor("C", vout, Netlist::GROUND, 10.0e-15).unwrap();
//!
//! let result = lnoc_circuit::transient::run(
//!     &nl,
//!     &TransientSpec::new(200.0e-12, 0.1e-12),
//! ).unwrap();
//! let wave = result.voltage(vout);
//! // After many RC time constants the output settles at 1 V.
//! assert!((wave.last_value() - 1.0).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod assemble;
pub mod dc;
pub mod error;
pub mod linear;
pub mod netlist;
pub mod sparse;
pub mod stimulus;
pub mod transient;
pub mod waveform;

pub use error::CircuitError;
pub use netlist::{DeviceId, Netlist, NodeId};
pub use waveform::Waveform;
