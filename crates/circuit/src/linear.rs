//! Dense linear algebra: LU factorization with partial pivoting.
//!
//! The MNA systems in this project are small (tens to a few hundred
//! unknowns) and moderately dense after MOSFET stamping, so a simple
//! dense LU is both fast enough and dependency-free. The factorization
//! is performed in place; a reusable [`Matrix`] avoids reallocation
//! across Newton iterations.

use crate::error::CircuitError;

/// A dense row-major square-capable matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero without reallocating.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Reads entry `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to entry `(row, col)` — the fundamental MNA stamp.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col] += value;
    }

    /// Multiplies `self · x` into a fresh vector (used by tests and by
    /// the residual checker).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.n..(r + 1) * self.n];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Factorizes `self` in place as `P·A = L·U` and solves `A·x = b`,
    /// overwriting `b` with the solution.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularMatrix`] when no usable pivot is
    /// found (matrix singular to working precision).
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), CircuitError> {
        let n = self.n;
        assert_eq!(b.len(), n);
        // Elimination with partial pivoting, applied to b on the fly.
        for k in 0..n {
            // Pivot search.
            let mut pivot_row = k;
            let mut pivot_mag = self.get(k, k).abs();
            for r in (k + 1)..n {
                let mag = self.get(r, k).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1.0e-300 {
                return Err(CircuitError::SingularMatrix { row: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = self.get(k, c);
                    self.set(k, c, self.get(pivot_row, c));
                    self.set(pivot_row, c, tmp);
                }
                b.swap(k, pivot_row);
            }
            let pivot = self.get(k, k);
            for r in (k + 1)..n {
                let factor = self.get(r, k) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in k..n {
                    let v = self.get(r, c) - factor * self.get(k, c);
                    self.set(r, c, v);
                }
                b[r] -= factor * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = b[k];
            let row = &self.data[k * n + k + 1..(k + 1) * n];
            sum -= row.iter().zip(&b[k + 1..]).map(|(a, x)| a * x).sum::<f64>();
            b[k] = sum / self.get(k, k);
        }
        Ok(())
    }
}

/// Euclidean norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm of a vector.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let mut b = vec![3.0, -1.0, 2.5];
        m.solve_in_place(&mut b).unwrap();
        assert_eq!(b, vec![3.0, -1.0, 2.5]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5]  →  x = [0.8, 1.4]
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let mut b = vec![3.0, 5.0];
        m.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] requires a row swap.
        let mut m = Matrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let mut b = vec![2.0, 7.0];
        m.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 7.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            m.solve_in_place(&mut b),
            Err(CircuitError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_solution() {
        let mut m = Matrix::zeros(4);
        // A diagonally dominant random-ish matrix.
        let entries = [
            [10.0, 1.0, -2.0, 0.5],
            [0.3, 8.0, 1.2, -0.7],
            [-1.0, 0.4, 12.0, 2.0],
            [0.6, -0.9, 0.2, 9.0],
        ];
        for (r, row) in entries.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        let x_true = vec![1.0, -2.0, 0.5, 3.0];
        let b = m.mul_vec(&x_true);
        let mut solved = b.clone();
        m.clone().solve_in_place(&mut solved).unwrap();
        for (a, b) in solved.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((norm_inf(&[-3.0, 2.0]) - 3.0).abs() < 1e-12);
    }
}
