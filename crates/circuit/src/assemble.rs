//! Two-phase MNA assembly with structure reuse.
//!
//! The reference assembly in [`crate::dc`] walks every device and re-stamps
//! the whole Jacobian on every Newton iteration. This module splits the
//! system once per netlist into:
//!
//! * a **constant** part — resistor conductances, voltage-source incidence,
//!   gmin diagonal, and capacitor backward-Euler companion conductances —
//!   cached per `(gmin, h)` configuration and `memcpy`'d into the working
//!   value array each iteration, with the matching linear residual obtained
//!   by one sparse matrix–vector product; and
//! * a **nonlinear** part — the MOSFET entries — the only stamps that are
//!   re-evaluated per iteration, scattered through slot indices precomputed
//!   against the fixed [`CscPattern`].
//!
//! The unknown layout matches the reference kernel: `x[i-1]` is the voltage
//! of node `i` (ground excluded) followed by one branch current per voltage
//! source in insertion order.

use crate::netlist::{Device, Netlist, NodeId};
use crate::sparse::CscPattern;
use crate::stimulus::Stimulus;
use lnoc_tech::device::MosModel;
use std::sync::Arc;

/// Derivative components a MOSFET stamp can reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MosDeriv {
    Gm,
    Gds,
    Gms,
    Gmb,
    Ggs,
    Ggd,
}

/// One precomputed Jacobian stamp of a MOSFET: `values[slot] += sign · deriv`.
#[derive(Debug, Clone)]
struct MosJacStamp {
    slot: usize,
    deriv: MosDeriv,
    sign: f64,
}

/// Current components a MOSFET residual stamp can reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MosCurrent {
    Id,
    Igs,
    Igd,
}

/// One precomputed residual stamp: `residual[row] += sign · current`.
#[derive(Debug, Clone)]
struct MosResStamp {
    row: usize,
    current: MosCurrent,
    sign: f64,
}

/// A MOSFET with its precomputed scatter lists.
#[derive(Debug, Clone)]
struct MosEntry {
    model: Arc<MosModel>,
    w: f64,
    /// Unknown-vector indices of the four terminals (`None` = ground).
    g: Option<usize>,
    d: Option<usize>,
    s: Option<usize>,
    b: Option<usize>,
    jac: Vec<MosJacStamp>,
    res: Vec<MosResStamp>,
}

/// A constant-conductance stamp (resistor or capacitor companion).
#[derive(Debug, Clone)]
struct TwoTerminalStamp {
    /// Slots for the up-to-four matrix positions (aa, ab, ba, bb).
    aa: Option<usize>,
    ab: Option<usize>,
    ba: Option<usize>,
    bb: Option<usize>,
    /// Element value: conductance (S) for resistors, capacitance (F) for
    /// capacitors (converted to `C/h` at base-build time).
    value: f64,
}

/// A voltage source's precomputed rows/slots.
#[derive(Debug, Clone)]
struct VsrcEntry {
    /// Branch-equation row.
    row: usize,
    /// Incidence slots: (pos,row), (row,pos), (neg,row), (row,neg).
    pos_row: Option<usize>,
    row_pos: Option<usize>,
    neg_row: Option<usize>,
    row_neg: Option<usize>,
    /// Stimulus snapshot (cloned so assembly never touches the netlist).
    stimulus: Stimulus,
}

/// Capacitor history bookkeeping for the companion right-hand side.
#[derive(Debug, Clone)]
struct CapRhsEntry {
    a_row: Option<usize>,
    b_row: Option<usize>,
    /// Node indices (including ground = 0) for `v_old` lookups.
    a_node: usize,
    b_node: usize,
    farads: f64,
}

/// Reusable two-phase assembler for one netlist's MNA system.
#[derive(Debug, Clone)]
pub struct Assembler {
    dim: usize,
    n_nodes: usize,
    pattern: CscPattern,
    /// Constant (linear) matrix values for the current `(gmin, h)`.
    base_values: Vec<f64>,
    /// Working matrix values: base + MOSFET stamps.
    values: Vec<f64>,
    /// Constant right-hand side for the current step: source values and
    /// capacitor history terms. Residual = A_base·x − rhs + f_nl(x).
    rhs: Vec<f64>,
    residual: Vec<f64>,
    resistors: Vec<TwoTerminalStamp>,
    capacitors: Vec<TwoTerminalStamp>,
    cap_rhs: Vec<CapRhsEntry>,
    vsources: Vec<VsrcEntry>,
    diag_slots: Vec<usize>,
    mosfets: Vec<MosEntry>,
    /// The `(gmin, h)` pair `base_values` was built for (`h = 0` ⇒ DC).
    base_key: (f64, f64),
    base_valid: bool,
}

/// Maps a node to its unknown index (ground has none).
fn unknown(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

impl Assembler {
    /// Performs the one-time symbolic analysis of a netlist: collects the
    /// fixed sparsity pattern and precomputes every stamp's value slot.
    pub fn new(nl: &Netlist) -> Self {
        let n_nodes = nl.node_count();
        let dim = (n_nodes - 1) + nl.vsource_count();
        let branch_base = n_nodes - 1;

        // --- Pass 1: collect structurally-nonzero positions.
        let mut positions: Vec<(usize, usize)> = Vec::new();
        // Diagonal: gmin needs every node-row diagonal; it also gives the
        // factorization a structurally-nonzero diagonal to prefer.
        for i in 0..(n_nodes - 1) {
            positions.push((i, i));
        }
        let push_pair =
            |positions: &mut Vec<(usize, usize)>, a: Option<usize>, b: Option<usize>| {
                if let Some(ra) = a {
                    positions.push((ra, ra));
                    if let Some(rb) = b {
                        positions.push((ra, rb));
                        positions.push((rb, ra));
                    }
                }
                if let Some(rb) = b {
                    positions.push((rb, rb));
                }
            };
        let mut branch = 0usize;
        for entry in nl.devices() {
            match &entry.device {
                Device::Resistor { a, b, .. } | Device::Capacitor { a, b, .. } => {
                    push_pair(&mut positions, unknown(*a), unknown(*b));
                }
                Device::VSource { pos, neg, .. } => {
                    let row = branch_base + branch;
                    branch += 1;
                    positions.push((row, row)); // structural anchor (value 0)
                    if let Some(rp) = unknown(*pos) {
                        positions.push((rp, row));
                        positions.push((row, rp));
                    }
                    if let Some(rn) = unknown(*neg) {
                        positions.push((rn, row));
                        positions.push((row, rn));
                    }
                }
                Device::Mosfet(m) => {
                    let (g, d, s, b) = (unknown(m.g), unknown(m.d), unknown(m.s), unknown(m.b));
                    for r in [d, s].into_iter().flatten() {
                        for col in [g, d, s, b].into_iter().flatten() {
                            positions.push((r, col));
                        }
                    }
                    // Gate tunnelling pairs (g,s) and (g,d).
                    push_pair(&mut positions, g, s);
                    push_pair(&mut positions, g, d);
                }
            }
        }
        let pattern = CscPattern::from_positions(dim, &positions);
        let slot = |r: Option<usize>, c: Option<usize>| -> Option<usize> {
            match (r, c) {
                (Some(r), Some(c)) => {
                    Some(pattern.slot(r, c).expect("position collected in pass 1"))
                }
                _ => None,
            }
        };

        // --- Pass 2: precompute slots per device.
        let mut resistors = Vec::new();
        let mut capacitors = Vec::new();
        let mut cap_rhs = Vec::new();
        let mut vsources = Vec::new();
        let mut mosfets = Vec::new();
        let mut branch = 0usize;
        for entry in nl.devices() {
            match &entry.device {
                Device::Resistor { a, b, ohms } => {
                    let (ua, ub) = (unknown(*a), unknown(*b));
                    resistors.push(TwoTerminalStamp {
                        aa: slot(ua, ua),
                        ab: slot(ua, ub),
                        ba: slot(ub, ua),
                        bb: slot(ub, ub),
                        value: 1.0 / ohms,
                    });
                }
                Device::Capacitor { a, b, farads } => {
                    if *farads == 0.0 {
                        continue;
                    }
                    let (ua, ub) = (unknown(*a), unknown(*b));
                    capacitors.push(TwoTerminalStamp {
                        aa: slot(ua, ua),
                        ab: slot(ua, ub),
                        ba: slot(ub, ua),
                        bb: slot(ub, ub),
                        value: *farads,
                    });
                    cap_rhs.push(CapRhsEntry {
                        a_row: ua,
                        b_row: ub,
                        a_node: a.index(),
                        b_node: b.index(),
                        farads: *farads,
                    });
                }
                Device::VSource { pos, neg, stimulus } => {
                    let row = branch_base + branch;
                    branch += 1;
                    let (up, un) = (unknown(*pos), unknown(*neg));
                    vsources.push(VsrcEntry {
                        row,
                        pos_row: slot(up, Some(row)),
                        row_pos: slot(Some(row), up),
                        neg_row: slot(un, Some(row)),
                        row_neg: slot(Some(row), un),
                        stimulus: stimulus.clone(),
                    });
                }
                Device::Mosfet(m) => {
                    let (g, d, s, b) = (unknown(m.g), unknown(m.d), unknown(m.s), unknown(m.b));
                    let mut jac = Vec::new();
                    let mut res = Vec::new();
                    // Channel current: drain row positive, source row
                    // negative; derivatives against all four terminals.
                    for (row, sign) in [(d, 1.0), (s, -1.0)] {
                        if let Some(r) = row {
                            res.push(MosResStamp {
                                row: r,
                                current: MosCurrent::Id,
                                sign,
                            });
                            for (col, deriv) in [
                                (g, MosDeriv::Gm),
                                (d, MosDeriv::Gds),
                                (s, MosDeriv::Gms),
                                (b, MosDeriv::Gmb),
                            ] {
                                if let Some(sl) = slot(Some(r), col) {
                                    jac.push(MosJacStamp {
                                        slot: sl,
                                        deriv,
                                        sign,
                                    });
                                }
                            }
                        }
                    }
                    // Gate tunnelling: current from gate into source/drain
                    // with conductance on the (g, s) / (g, d) blocks.
                    for (other, current, deriv) in [
                        (s, MosCurrent::Igs, MosDeriv::Ggs),
                        (d, MosCurrent::Igd, MosDeriv::Ggd),
                    ] {
                        if let Some(rg) = g {
                            res.push(MosResStamp {
                                row: rg,
                                current,
                                sign: 1.0,
                            });
                            jac.push(MosJacStamp {
                                slot: slot(Some(rg), Some(rg)).expect("diag collected"),
                                deriv,
                                sign: 1.0,
                            });
                            if let Some(sl) = slot(Some(rg), other) {
                                jac.push(MosJacStamp {
                                    slot: sl,
                                    deriv,
                                    sign: -1.0,
                                });
                            }
                        }
                        if let Some(ro) = other {
                            res.push(MosResStamp {
                                row: ro,
                                current,
                                sign: -1.0,
                            });
                            jac.push(MosJacStamp {
                                slot: slot(Some(ro), Some(ro)).expect("diag collected"),
                                deriv,
                                sign: 1.0,
                            });
                            if let Some(sl) = slot(Some(ro), g) {
                                jac.push(MosJacStamp {
                                    slot: sl,
                                    deriv,
                                    sign: -1.0,
                                });
                            }
                        }
                    }
                    mosfets.push(MosEntry {
                        model: Arc::clone(&m.model),
                        w: m.w,
                        g,
                        d,
                        s,
                        b,
                        jac,
                        res,
                    });
                }
            }
        }
        let diag_slots = (0..(n_nodes - 1))
            .map(|i| pattern.slot(i, i).expect("diagonal collected"))
            .collect();

        let nnz = pattern.nnz();
        Assembler {
            dim,
            n_nodes,
            pattern,
            base_values: vec![0.0; nnz],
            values: vec![0.0; nnz],
            rhs: vec![0.0; dim],
            residual: vec![0.0; dim],
            resistors,
            capacitors,
            cap_rhs,
            vsources,
            diag_slots,
            mosfets,
            base_key: (f64::NAN, f64::NAN),
            base_valid: false,
        }
    }

    /// System dimension (node unknowns + branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of non-ground node unknowns.
    pub fn node_unknowns(&self) -> usize {
        self.n_nodes - 1
    }

    /// The fixed sparsity pattern.
    pub fn pattern(&self) -> &CscPattern {
        &self.pattern
    }

    /// Rebuilds the cached constant stamps for a `(gmin, h)` configuration
    /// if it changed (`h = None` ⇒ DC, capacitors open). Costs O(nnz) and
    /// runs once per gmin stage / step size, not per Newton iteration.
    pub fn set_linear_state(&mut self, gmin: f64, h: Option<f64>) {
        let key = (gmin, h.unwrap_or(0.0));
        if self.base_valid && key == self.base_key {
            return;
        }
        self.base_key = key;
        self.base_valid = true;
        let base = &mut self.base_values;
        base.fill(0.0);
        let mut stamp = |s: &TwoTerminalStamp, g: f64| {
            if let Some(sl) = s.aa {
                base[sl] += g;
            }
            if let Some(sl) = s.bb {
                base[sl] += g;
            }
            if let Some(sl) = s.ab {
                base[sl] -= g;
            }
            if let Some(sl) = s.ba {
                base[sl] -= g;
            }
        };
        for r in &self.resistors {
            stamp(r, r.value);
        }
        if let Some(h) = h {
            for c in &self.capacitors {
                stamp(c, c.value / h);
            }
        }
        for v in &self.vsources {
            if let Some(sl) = v.pos_row {
                base[sl] += 1.0;
            }
            if let Some(sl) = v.row_pos {
                base[sl] += 1.0;
            }
            if let Some(sl) = v.neg_row {
                base[sl] -= 1.0;
            }
            if let Some(sl) = v.row_neg {
                base[sl] -= 1.0;
            }
        }
        if gmin > 0.0 {
            for &sl in &self.diag_slots {
                base[sl] += gmin;
            }
        }
    }

    /// Rebuilds the constant right-hand side for one solve/step: source
    /// values at `time` (scaled by `source_scale`) and, in transient,
    /// capacitor history terms from `v_old` (node voltages including
    /// ground at index 0). Call once per step, not per iteration.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `v_old` covers all nodes when present.
    pub fn prepare_rhs(&mut self, time: f64, source_scale: f64, v_old: Option<&[f64]>) {
        self.rhs.fill(0.0);
        for v in &self.vsources {
            self.rhs[v.row] = source_scale * v.stimulus.at(time);
        }
        if let Some(v_old) = v_old {
            debug_assert!(v_old.len() >= self.n_nodes);
            let (_, h) = self.base_key;
            debug_assert!(h > 0.0, "set_linear_state with h before transient rhs");
            for c in &self.cap_rhs {
                let i_hist = (c.farads / h) * (v_old[c.a_node] - v_old[c.b_node]);
                if let Some(r) = c.a_row {
                    self.rhs[r] += i_hist;
                }
                if let Some(r) = c.b_row {
                    self.rhs[r] -= i_hist;
                }
            }
        }
    }

    /// Assembles the Jacobian values and residual at the guess `x`:
    /// constant stamps are copied in, the linear residual comes from one
    /// sparse mat-vec, and only MOSFETs are re-evaluated. Read the results
    /// through [`Assembler::values`] / [`Assembler::residual`].
    pub fn assemble(&mut self, x: &[f64]) {
        debug_assert_eq!(x.len(), self.dim);
        self.values.copy_from_slice(&self.base_values);
        self.pattern
            .mul_vec_into(&self.base_values, x, &mut self.residual);
        for (r, rhs) in self.residual.iter_mut().zip(&self.rhs) {
            *r -= rhs;
        }

        let volt = |u: Option<usize>| -> f64 { u.map_or(0.0, |i| x[i]) };
        for m in &self.mosfets {
            let op = m
                .model
                .eval(m.w, volt(m.g), volt(m.d), volt(m.s), volt(m.b));
            for st in &m.jac {
                let d = match st.deriv {
                    MosDeriv::Gm => op.gm,
                    MosDeriv::Gds => op.gds,
                    MosDeriv::Gms => op.gms,
                    MosDeriv::Gmb => op.gmb,
                    MosDeriv::Ggs => op.g_gs,
                    MosDeriv::Ggd => op.g_gd,
                };
                self.values[st.slot] += st.sign * d;
            }
            for st in &m.res {
                let i = match st.current {
                    MosCurrent::Id => op.i_d,
                    MosCurrent::Igs => op.i_g_s,
                    MosCurrent::Igd => op.i_g_d,
                };
                self.residual[st.row] += st.sign * i;
            }
        }
    }

    /// Jacobian values from the last [`Assembler::assemble`], aligned with
    /// [`Assembler::pattern`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Residual from the last [`Assembler::assemble`].
    pub fn residual(&self) -> &[f64] {
        &self.residual
    }

    /// Replaces a voltage source's stimulus snapshot (mirrors
    /// [`Netlist::set_stimulus`] for callers that mutate sources between
    /// phases while keeping one assembler alive). Branch order follows
    /// source insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is out of range.
    pub fn set_branch_stimulus(&mut self, branch: usize, stimulus: Stimulus) {
        self.vsources[branch].stimulus = stimulus;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc;
    use crate::linear::Matrix;
    use crate::netlist::MosfetSpec;
    use crate::stimulus::Stimulus;
    use lnoc_tech::device::{Polarity, VtClass};
    use lnoc_tech::node45::Node45;
    use std::sync::Arc;

    /// Reference assembly (the seed kernel) for oracle comparison.
    fn reference(
        nl: &Netlist,
        x: &[f64],
        time: f64,
        v_old_h: Option<(&[f64], f64)>,
        gmin: f64,
    ) -> (Matrix, Vec<f64>) {
        dc::assemble_reference_system(nl, x, time, v_old_h, gmin, 1.0)
    }

    fn demo_netlist() -> Netlist {
        let tech = Node45::tt();
        let nmos = Arc::new(tech.mos(Polarity::Nmos, VtClass::Nominal));
        let pmos = Arc::new(tech.mos(Polarity::Pmos, VtClass::Nominal));
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("in");
        let out = nl.node("out");
        let mid = nl.node("mid");
        nl.vsource("DD", vdd, Netlist::GROUND, Stimulus::dc(1.0));
        nl.vsource(
            "IN",
            inp,
            Netlist::GROUND,
            Stimulus::ramp(0.0, 1.0, 10e-12, 5e-12),
        );
        nl.resistor("R1", out, mid, 2.0e3).unwrap();
        nl.capacitor("C1", mid, Netlist::GROUND, 5e-15).unwrap();
        nl.capacitor("CZ", out, Netlist::GROUND, 0.0).unwrap();
        nl.mosfet(
            "MP",
            MosfetSpec {
                d: out,
                g: inp,
                s: vdd,
                b: vdd,
                model: pmos,
                w: 900e-9,
            },
        )
        .unwrap();
        nl.mosfet(
            "MN",
            MosfetSpec {
                d: out,
                g: inp,
                s: Netlist::GROUND,
                b: Netlist::GROUND,
                model: nmos,
                w: 450e-9,
            },
        )
        .unwrap();
        nl
    }

    fn assert_system_matches(
        asm: &mut Assembler,
        nl: &Netlist,
        x: &[f64],
        time: f64,
        v_old_h: Option<(&[f64], f64)>,
        gmin: f64,
    ) {
        asm.set_linear_state(gmin, v_old_h.map(|(_, h)| h));
        asm.prepare_rhs(time, 1.0, v_old_h.map(|(v, _)| v));
        asm.assemble(x);
        let residual = asm.residual().to_vec();
        let fast = asm.pattern().to_dense(asm.values());
        let (want_jac, want_res) = reference(nl, x, time, v_old_h, gmin);
        let n = want_res.len();
        for r in 0..n {
            assert!(
                (residual[r] - want_res[r]).abs() <= 1e-12 * (1.0 + want_res[r].abs()),
                "residual[{r}]: fast {} vs reference {}",
                residual[r],
                want_res[r]
            );
            for c in 0..n {
                assert!(
                    (fast.get(r, c) - want_jac.get(r, c)).abs()
                        <= 1e-12 * (1.0 + want_jac.get(r, c).abs()),
                    "jac[{r},{c}]: fast {} vs reference {}",
                    fast.get(r, c),
                    want_jac.get(r, c)
                );
            }
        }
    }

    #[test]
    fn matches_reference_assembly_dc() {
        let nl = demo_netlist();
        let mut asm = Assembler::new(&nl);
        let dim = asm.dim();
        let x: Vec<f64> = (0..dim).map(|i| 0.07 * i as f64 - 0.1).collect();
        assert_system_matches(&mut asm, &nl, &x, 0.0, None, 0.0);
        assert_system_matches(&mut asm, &nl, &x, 0.0, None, 1.0e-6);
    }

    #[test]
    fn matches_reference_assembly_transient() {
        let nl = demo_netlist();
        let mut asm = Assembler::new(&nl);
        let dim = asm.dim();
        let x: Vec<f64> = (0..dim).map(|i| 0.05 * (i as f64) + 0.02).collect();
        let v_old: Vec<f64> = (0..nl.node_count()).map(|i| 0.1 * i as f64).collect();
        assert_system_matches(&mut asm, &nl, &x, 12.0e-12, Some((&v_old, 0.1e-12)), 0.0);
    }

    #[test]
    fn base_rebuild_is_keyed() {
        let nl = demo_netlist();
        let mut asm = Assembler::new(&nl);
        asm.set_linear_state(1.0e-9, None);
        let snapshot = asm.base_values.clone();
        // Same key: no change. Different key: gmin disappears from diag.
        asm.set_linear_state(1.0e-9, None);
        assert_eq!(snapshot, asm.base_values);
        asm.set_linear_state(0.0, None);
        assert_ne!(snapshot, asm.base_values);
    }

    #[test]
    fn set_branch_stimulus_updates_rhs() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GROUND, Stimulus::dc(1.0));
        nl.resistor("R", a, Netlist::GROUND, 1e3).unwrap();
        let mut asm = Assembler::new(&nl);
        asm.set_linear_state(0.0, None);
        asm.prepare_rhs(0.0, 1.0, None);
        assert!((asm.rhs[1] - 1.0).abs() < 1e-15);
        asm.set_branch_stimulus(0, Stimulus::dc(2.5));
        asm.prepare_rhs(0.0, 1.0, None);
        assert!((asm.rhs[1] - 2.5).abs() < 1e-15);
    }
}
