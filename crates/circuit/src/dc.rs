//! DC operating-point analysis: Newton–Raphson on the MNA equations with
//! gmin stepping and per-iteration voltage damping.
//!
//! The same assembly kernel serves the transient engine (which adds
//! capacitor companion models); see [`crate::transient`].
//!
//! Two solve paths coexist (selected by [`NewtonOptions::solver`]):
//!
//! * the **fast engine** — a [`crate::assemble::Assembler`] that caches
//!   constant stamps and re-evaluates only MOSFETs, feeding either the
//!   dense LU (small systems) or the pattern-reusing sparse LU of
//!   [`crate::sparse`]; factors and scratch live in a [`NewtonWorkspace`]
//!   reused across Newton iterations, gmin stages and transient steps;
//! * the **reference kernel** — the original walk-every-device dense
//!   assembly, kept as the correctness oracle for property tests and as the
//!   measured baseline for the performance benches.

use crate::assemble::Assembler;
use crate::error::CircuitError;
use crate::linear::{norm_inf, Matrix};
use crate::netlist::{Device, Netlist, NodeId};
use crate::sparse::{SparseLu, DENSE_SPARSE_CROSSOVER};

/// Which linear-algebra/assembly path a solve uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Fast assembler; sparse LU at or above
    /// [`DENSE_SPARSE_CROSSOVER`] unknowns, dense below. The default.
    #[default]
    Auto,
    /// Fast assembler with the dense LU regardless of size.
    Dense,
    /// Fast assembler with the sparse LU regardless of size.
    Sparse,
    /// The original full-restamp dense kernel, end to end: per-call
    /// allocation, every device re-stamped per iteration, and the seed's
    /// central-finite-difference device evaluation. Kept as the
    /// correctness oracle and as the benchmark baseline (its Jacobians
    /// are independent of the fast path's analytic gradients; the
    /// residual function — and therefore the converged solution — is
    /// identical).
    Reference,
}

/// Options controlling Newton iteration.
#[derive(Debug, Clone)]
pub struct NewtonOptions {
    /// Maximum Newton iterations per gmin stage.
    pub max_iterations: usize,
    /// Convergence: max |Δv| across node voltages (V).
    pub v_tolerance: f64,
    /// Convergence: max KCL residual (A).
    pub i_tolerance: f64,
    /// Per-iteration clamp on node-voltage updates (V); damping that
    /// keeps the exponential device models inside float range.
    pub v_step_limit: f64,
    /// Ladder of gmin values for the homotopy (ends with the final gmin,
    /// normally 0).
    pub gmin_ladder: Vec<f64>,
    /// Assembly/linear-solver path.
    pub solver: SolverKind,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 150,
            v_tolerance: 1.0e-7,
            i_tolerance: 1.0e-10,
            v_step_limit: 0.3,
            // A dense ladder keeps each continuation step small, which
            // matters for the regenerative (keeper) feedback loops in
            // the crossbar slices.
            gmin_ladder: vec![
                1.0e-2, 1.0e-3, 1.0e-4, 1.0e-5, 1.0e-6, 1.0e-7, 1.0e-8, 1.0e-9, 1.0e-10, 1.0e-11,
                0.0,
            ],
            solver: SolverKind::Auto,
        }
    }
}

/// A converged operating point: node voltages and source branch currents.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// Voltage per node, indexed by [`NodeId::index`]; entry 0 (ground)
    /// is always 0.
    voltages: Vec<f64>,
    /// Current per voltage source, in branch order. Positive = flowing
    /// from the positive terminal *through the source* to the negative
    /// terminal; the current a supply delivers to the circuit is the
    /// negative of this.
    branch_currents: Vec<f64>,
}

impl DcSolution {
    /// Voltage of a node (V).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// All node voltages indexed by node index.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Branch current of the `k`-th voltage source (see field docs for
    /// sign convention).
    pub fn branch_current(&self, k: usize) -> f64 {
        self.branch_currents[k]
    }

    /// Current delivered *into the circuit* by a voltage source
    /// (positive when the source is supplying energy), by device id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a voltage source of `nl`.
    pub fn supply_current(&self, nl: &Netlist, id: crate::netlist::DeviceId) -> f64 {
        let k = nl
            .branch_index(id)
            .expect("device is not a voltage source of this netlist");
        -self.branch_currents[k]
    }

    /// Total power delivered by all sources (W) — equals total static
    /// dissipation at the operating point.
    pub fn total_source_power(&self, nl: &Netlist) -> f64 {
        let mut total = 0.0;
        let mut k = 0;
        for entry in nl.devices() {
            if let Device::VSource { pos, neg, .. } = &entry.device {
                let v = self.voltage(*pos) - self.voltage(*neg);
                total += v * (-self.branch_currents[k]);
                k += 1;
            }
        }
        total
    }
}

/// Transient companion context threaded into the shared assembly kernel.
pub(crate) struct Companion<'a> {
    /// Node voltages at the previous accepted time point.
    pub v_old: &'a [f64],
    /// Time step (s).
    pub h: f64,
}

/// Device-evaluation flavour of the reference assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RefDeviceEval {
    /// The shared analytic kernel (used when comparing stamping structure
    /// against the fast assembler, which must match it bit-for-bit).
    Analytic,
    /// The seed's central-finite-difference evaluation — what
    /// [`SolverKind::Reference`] solves with, so the baseline is the
    /// original engine end to end and independent of the analytic
    /// gradients.
    FiniteDifference,
}

/// Assembles the Jacobian and residual at guess `x`.
///
/// Layout of `x`: `x[i-1]` is the voltage of node `i` (ground excluded),
/// followed by one branch current per voltage source in insertion order.
/// `source_scale` multiplies every source value (1.0 normally; < 1
/// during source-stepping homotopy).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    nl: &Netlist,
    x: &[f64],
    time: f64,
    companion: Option<&Companion<'_>>,
    gmin: f64,
    source_scale: f64,
    eval: RefDeviceEval,
    jac: &mut Matrix,
    residual: &mut [f64],
) {
    let n_nodes = nl.node_count();
    let idx = |node: NodeId| -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    };
    let volt = |node: NodeId| -> f64 {
        if node.is_ground() {
            0.0
        } else {
            x[node.index() - 1]
        }
    };

    jac.clear();
    residual.fill(0.0);

    // gmin from every node to ground (0 disables).
    if gmin > 0.0 {
        for i in 0..(n_nodes - 1) {
            jac.add(i, i, gmin);
            residual[i] += gmin * x[i];
        }
    }

    let mut branch = 0usize;
    let branch_base = n_nodes - 1;

    for entry in nl.devices() {
        match &entry.device {
            Device::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                let i = g * (volt(*a) - volt(*b));
                if let Some(ra) = idx(*a) {
                    residual[ra] += i;
                    jac.add(ra, ra, g);
                    if let Some(rb) = idx(*b) {
                        jac.add(ra, rb, -g);
                    }
                }
                if let Some(rb) = idx(*b) {
                    residual[rb] -= i;
                    jac.add(rb, rb, g);
                    if let Some(ra) = idx(*a) {
                        jac.add(rb, ra, -g);
                    }
                }
            }
            Device::Capacitor { a, b, farads } => {
                // Open in DC; backward-Euler companion in transient.
                let Some(c) = companion else { continue };
                if *farads == 0.0 {
                    continue;
                }
                let g = farads / c.h;
                let v_new = volt(*a) - volt(*b);
                let v_old = c.v_old[a.index()] - c.v_old[b.index()];
                let i = g * (v_new - v_old);
                if let Some(ra) = idx(*a) {
                    residual[ra] += i;
                    jac.add(ra, ra, g);
                    if let Some(rb) = idx(*b) {
                        jac.add(ra, rb, -g);
                    }
                }
                if let Some(rb) = idx(*b) {
                    residual[rb] -= i;
                    jac.add(rb, rb, g);
                    if let Some(ra) = idx(*a) {
                        jac.add(rb, ra, -g);
                    }
                }
            }
            Device::VSource { pos, neg, stimulus } => {
                let row = branch_base + branch;
                let i_branch = x[row];
                if let Some(rp) = idx(*pos) {
                    residual[rp] += i_branch;
                    jac.add(rp, row, 1.0);
                    jac.add(row, rp, 1.0);
                }
                if let Some(rn) = idx(*neg) {
                    residual[rn] -= i_branch;
                    jac.add(rn, row, -1.0);
                    jac.add(row, rn, -1.0);
                }
                residual[row] = volt(*pos) - volt(*neg) - source_scale * stimulus.at(time);
                branch += 1;
            }
            Device::Mosfet(m) => {
                let (vg, vd, vs, vb) = (volt(m.g), volt(m.d), volt(m.s), volt(m.b));
                let op = match eval {
                    RefDeviceEval::Analytic => m.model.eval(m.w, vg, vd, vs, vb),
                    RefDeviceEval::FiniteDifference => m.model.eval_fd(m.w, vg, vd, vs, vb),
                };

                // Channel current: enters the device at the drain,
                // leaves at the source.
                if let Some(rd) = idx(m.d) {
                    residual[rd] += op.i_d;
                    if let Some(c) = idx(m.g) {
                        jac.add(rd, c, op.gm);
                    }
                    if let Some(c) = idx(m.d) {
                        jac.add(rd, c, op.gds);
                    }
                    if let Some(c) = idx(m.s) {
                        jac.add(rd, c, op.gms);
                    }
                    if let Some(c) = idx(m.b) {
                        jac.add(rd, c, op.gmb);
                    }
                }
                if let Some(rs) = idx(m.s) {
                    residual[rs] -= op.i_d;
                    if let Some(c) = idx(m.g) {
                        jac.add(rs, c, -op.gm);
                    }
                    if let Some(c) = idx(m.d) {
                        jac.add(rs, c, -op.gds);
                    }
                    if let Some(c) = idx(m.s) {
                        jac.add(rs, c, -op.gms);
                    }
                    if let Some(c) = idx(m.b) {
                        jac.add(rs, c, -op.gmb);
                    }
                }

                // Gate tunnelling: gate → source and gate → drain.
                stamp_two_terminal_current(jac, residual, &idx, m.g, m.s, op.i_g_s, op.g_gs);
                stamp_two_terminal_current(jac, residual, &idx, m.g, m.d, op.i_g_d, op.g_gd);
            }
        }
    }
}

/// Stamps a current `i(v_a − v_b)` with conductance `g = di/d(v_a − v_b)`
/// flowing from `a` to `b`.
fn stamp_two_terminal_current(
    jac: &mut Matrix,
    residual: &mut [f64],
    idx: &dyn Fn(NodeId) -> Option<usize>,
    a: NodeId,
    b: NodeId,
    i: f64,
    g: f64,
) {
    if let Some(ra) = idx(a) {
        residual[ra] += i;
        jac.add(ra, ra, g);
        if let Some(rb) = idx(b) {
            jac.add(ra, rb, -g);
        }
    }
    if let Some(rb) = idx(b) {
        residual[rb] -= i;
        jac.add(rb, rb, g);
        if let Some(ra) = idx(a) {
            jac.add(rb, ra, -g);
        }
    }
}

/// Assembles the reference (oracle) Jacobian and residual at `x` and
/// returns them densely, using the shared analytic device kernel so
/// stamping *structure* can be compared bit-for-bit against the fast
/// assembler. (`SolverKind::Reference` solves instead with the seed's
/// finite-difference evaluation; see [`SolverKind`].) `v_old_h` supplies
/// the backward-Euler companion context for transient systems. Exposed
/// for property tests and for capturing real crossbar-slice systems in
/// benches.
pub fn assemble_reference_system(
    nl: &Netlist,
    x: &[f64],
    time: f64,
    v_old_h: Option<(&[f64], f64)>,
    gmin: f64,
    source_scale: f64,
) -> (Matrix, Vec<f64>) {
    let dim = (nl.node_count() - 1) + nl.vsource_count();
    let mut jac = Matrix::zeros(dim);
    let mut residual = vec![0.0; dim];
    let companion = v_old_h.map(|(v_old, h)| Companion { v_old, h });
    assemble(
        nl,
        x,
        time,
        companion.as_ref(),
        gmin,
        source_scale,
        RefDeviceEval::Analytic,
        &mut jac,
        &mut residual,
    );
    (jac, residual)
}

/// The linear-solver backend of a fast-path workspace.
#[derive(Debug)]
enum Backend {
    /// Dense LU on a scatter of the sparse values (small systems).
    Dense(Matrix),
    /// Pattern-reusing sparse LU (boxed: it carries factor + scratch
    /// arrays and dwarfs the dense variant's header).
    Sparse(Box<SparseLu>),
}

/// Reusable state of the fast Newton engine: the two-phase assembler, the
/// factorization backend, and solve scratch. Build once per netlist
/// structure and reuse across Newton iterations, gmin stages and transient
/// steps — nothing here allocates after construction.
#[derive(Debug)]
pub struct NewtonWorkspace {
    asm: Assembler,
    backend: Backend,
    dx: Vec<f64>,
}

impl NewtonWorkspace {
    /// Builds a workspace for `nl`, choosing the backend per `kind`
    /// ([`SolverKind::Reference`] is not a fast path and is rejected).
    ///
    /// # Panics
    ///
    /// Panics when `kind` is [`SolverKind::Reference`].
    pub fn new(nl: &Netlist, kind: SolverKind) -> Self {
        let asm = Assembler::new(nl);
        let dim = asm.dim();
        let sparse = match kind {
            SolverKind::Sparse => true,
            SolverKind::Dense => false,
            SolverKind::Auto => dim >= DENSE_SPARSE_CROSSOVER,
            SolverKind::Reference => panic!("Reference solves do not use a workspace"),
        };
        let backend = if sparse {
            Backend::Sparse(Box::new(SparseLu::new(dim)))
        } else {
            Backend::Dense(Matrix::zeros(dim))
        };
        NewtonWorkspace {
            backend,
            dx: vec![0.0; dim],
            asm,
        }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.asm.dim()
    }

    /// `true` when this workspace solves through the sparse backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self.backend, Backend::Sparse(_))
    }

    /// Mirrors [`Netlist::set_stimulus`] into the assembler's snapshot for
    /// callers that keep a workspace alive across stimulus swaps. `branch`
    /// is the voltage-source insertion index.
    pub fn set_branch_stimulus(&mut self, branch: usize, stimulus: crate::stimulus::Stimulus) {
        self.asm.set_branch_stimulus(branch, stimulus);
    }
}

/// Either the fast workspace-backed engine or the reference kernel.
#[derive(Debug)]
pub(crate) enum Engine {
    /// Original dense full-restamp kernel.
    Reference,
    /// Fast two-phase assembler + reusable factorization.
    Fast(Box<NewtonWorkspace>),
}

impl Engine {
    pub(crate) fn new(nl: &Netlist, kind: SolverKind) -> Self {
        match kind {
            SolverKind::Reference => Engine::Reference,
            kind => Engine::Fast(Box::new(NewtonWorkspace::new(nl, kind))),
        }
    }

    /// `true` for the frozen seed kernel (which also opts out of the
    /// transient predictor, so baseline measurements reflect the original
    /// engine end to end).
    pub(crate) fn is_reference(&self) -> bool {
        matches!(self, Engine::Reference)
    }
}

/// Damped Newton through whichever engine is selected.
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_with_engine(
    nl: &Netlist,
    engine: &mut Engine,
    x: &mut [f64],
    time: f64,
    companion: Option<&Companion<'_>>,
    gmin: f64,
    source_scale: f64,
    opts: &NewtonOptions,
) -> Result<f64, CircuitError> {
    match engine {
        Engine::Reference => newton_scaled(nl, x, time, companion, gmin, source_scale, opts),
        Engine::Fast(ws) => newton_fast(nl, ws, x, time, companion, gmin, source_scale, opts),
    }
}

/// The fast Newton loop: memcpy'd constant stamps + MOSFET-only restamping
/// per iteration, and factorization state reused across iterations.
#[allow(clippy::too_many_arguments)]
fn newton_fast(
    nl: &Netlist,
    ws: &mut NewtonWorkspace,
    x: &mut [f64],
    time: f64,
    companion: Option<&Companion<'_>>,
    gmin: f64,
    source_scale: f64,
    opts: &NewtonOptions,
) -> Result<f64, CircuitError> {
    let n_nodes = nl.node_count();
    debug_assert_eq!(x.len(), ws.asm.dim());
    ws.asm.set_linear_state(gmin, companion.map(|c| c.h));
    ws.asm
        .prepare_rhs(time, source_scale, companion.map(|c| c.v_old));

    let mut last_residual = f64::INFINITY;
    for _ in 0..opts.max_iterations {
        ws.asm.assemble(x);
        let residual = ws.asm.residual();
        for (d, r) in ws.dx.iter_mut().zip(residual) {
            *d = -r;
        }
        match &mut ws.backend {
            Backend::Dense(m) => {
                scatter_dense(&ws.asm, m);
                m.solve_in_place(&mut ws.dx)?;
            }
            Backend::Sparse(lu) => {
                lu.refactorize(ws.asm.pattern(), ws.asm.values())?;
                lu.solve_in_place(&mut ws.dx);
            }
        }

        // Damp voltage updates (branch currents move freely).
        let mut max_dv = 0.0_f64;
        for (i, d) in ws.dx.iter_mut().enumerate() {
            if i < n_nodes - 1 {
                *d = d.clamp(-opts.v_step_limit, opts.v_step_limit);
                max_dv = max_dv.max(d.abs());
            }
            x[i] += *d;
        }

        last_residual = norm_inf(&ws.asm.residual()[..n_nodes - 1]);
        if max_dv < opts.v_tolerance && last_residual < opts.i_tolerance {
            return Ok(last_residual);
        }
    }
    Err(CircuitError::NoConvergence {
        analysis: if companion.is_some() {
            "transient"
        } else {
            "dc"
        },
        time,
        residual: last_residual,
    })
}

/// Scatters the assembler's sparse values into the dense backend matrix.
fn scatter_dense(asm: &Assembler, m: &mut Matrix) {
    m.clear();
    let pattern = asm.pattern();
    let values = asm.values();
    for col in 0..pattern.dim() {
        let range = pattern.col_range(col);
        let rows = pattern.col_rows(col);
        for (off, slot) in range.enumerate() {
            m.add(rows[off], col, values[slot]);
        }
    }
}

/// Reference damped Newton with an explicit source scale: allocates its
/// system per call and re-stamps every device per iteration (the seed
/// behaviour, kept as oracle and benchmark baseline).
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_scaled(
    nl: &Netlist,
    x: &mut [f64],
    time: f64,
    companion: Option<&Companion<'_>>,
    gmin: f64,
    source_scale: f64,
    opts: &NewtonOptions,
) -> Result<f64, CircuitError> {
    let n_nodes = nl.node_count();
    let dim = (n_nodes - 1) + nl.vsource_count();
    debug_assert_eq!(x.len(), dim);
    let mut jac = Matrix::zeros(dim);
    let mut residual = vec![0.0; dim];

    let mut last_residual = f64::INFINITY;
    for _ in 0..opts.max_iterations {
        assemble(
            nl,
            x,
            time,
            companion,
            gmin,
            source_scale,
            RefDeviceEval::FiniteDifference,
            &mut jac,
            &mut residual,
        );
        // Newton step: J·dx = −F.
        let mut dx: Vec<f64> = residual.iter().map(|r| -r).collect();
        jac.solve_in_place(&mut dx)?;

        // Damp voltage updates.
        let mut max_dv = 0.0_f64;
        for (i, d) in dx.iter_mut().enumerate() {
            if i < n_nodes - 1 {
                *d = d.clamp(-opts.v_step_limit, opts.v_step_limit);
                max_dv = max_dv.max(d.abs());
            }
            x[i] += *d;
        }

        last_residual = norm_inf(&residual[..n_nodes - 1]);
        if max_dv < opts.v_tolerance && last_residual < opts.i_tolerance {
            return Ok(last_residual);
        }
    }
    Err(CircuitError::NoConvergence {
        analysis: if companion.is_some() {
            "transient"
        } else {
            "dc"
        },
        time,
        residual: last_residual,
    })
}

/// Solves the DC operating point with default options.
///
/// # Errors
///
/// Returns [`CircuitError::NoConvergence`] if Newton fails on every gmin
/// stage, or [`CircuitError::SingularMatrix`] for structurally defective
/// circuits (e.g. a floating sub-network with no DC path at all).
pub fn solve(nl: &Netlist) -> Result<DcSolution, CircuitError> {
    solve_with(nl, &NewtonOptions::default(), None)
}

/// Solves the DC operating point with explicit options and an optional
/// warm start (a previous solution's raw unknown vector).
pub fn solve_with(
    nl: &Netlist,
    opts: &NewtonOptions,
    warm_start: Option<&[f64]>,
) -> Result<DcSolution, CircuitError> {
    let mut engine = Engine::new(nl, opts.solver);
    solve_with_engine(nl, &mut engine, opts, warm_start)
}

/// [`solve_with`] on an existing engine (the transient loop shares one
/// engine between its initial operating point and its time steps).
pub(crate) fn solve_with_engine(
    nl: &Netlist,
    engine: &mut Engine,
    opts: &NewtonOptions,
    warm_start: Option<&[f64]>,
) -> Result<DcSolution, CircuitError> {
    match gmin_ladder_solve(nl, engine, opts, warm_start) {
        Ok(sol) => Ok(sol),
        // Last-resort homotopy: ramp all sources from zero.
        Err(first_err) => source_stepping_solve(nl, engine, opts).map_err(|_| first_err),
    }
}

/// Primary strategy: gmin continuation with damped retries per stage.
fn gmin_ladder_solve(
    nl: &Netlist,
    engine: &mut Engine,
    opts: &NewtonOptions,
    warm_start: Option<&[f64]>,
) -> Result<DcSolution, CircuitError> {
    let dim = (nl.node_count() - 1) + nl.vsource_count();
    let mut x = vec![0.0; dim];
    if let Some(ws) = warm_start {
        x.copy_from_slice(ws);
        // A warm start is already near a solution branch; entering the
        // gmin ladder would drag bistable nodes toward mid-rail and can
        // hop to the wrong branch. Try plain Newton first.
        if newton_with_engine(nl, engine, &mut x, 0.0, None, 0.0, 1.0, opts).is_ok() {
            return Ok(pack_solution(nl, &x));
        }
        x.copy_from_slice(ws);
    }

    for &gmin in &opts.gmin_ladder {
        let stage_start = x.clone();
        let mut step = opts.v_step_limit;
        let mut iters = opts.max_iterations;
        let mut last_err = None;
        let mut converged = false;
        // Positive-feedback structures (level-restoring keepers) can make
        // Newton limit-cycle, and a warm start from the previous gmin
        // stage can sit near the *unstable* equilibrium of a bistable
        // loop. Retry with heavier damping, then from a cold start.
        for attempt in 0..6 {
            let attempt_opts = NewtonOptions {
                v_step_limit: step,
                max_iterations: iters,
                ..opts.clone()
            };
            match newton_with_engine(nl, engine, &mut x, 0.0, None, gmin, 1.0, &attempt_opts) {
                Ok(_) => {
                    converged = true;
                    break;
                }
                Err(e) => {
                    last_err = Some(e);
                    if attempt < 2 {
                        x.copy_from_slice(&stage_start);
                        step *= 0.35;
                    } else {
                        // Cold restart escapes the unstable branch.
                        x.fill(0.0);
                        step = opts.v_step_limit * 0.5_f64.powi(attempt - 2);
                    }
                    iters *= 2;
                }
            }
        }
        if !converged {
            return Err(last_err.expect("attempt loop ran at least once"));
        }
    }
    Ok(pack_solution(nl, &x))
}

/// Fallback strategy: ramp every source value from 0 to its target while
/// holding a small gmin, then release the gmin. Follows a continuous
/// solution branch, which handles bistable keeper loops that defeat the
/// gmin ladder.
fn source_stepping_solve(
    nl: &Netlist,
    engine: &mut Engine,
    opts: &NewtonOptions,
) -> Result<DcSolution, CircuitError> {
    let dim = (nl.node_count() - 1) + nl.vsource_count();
    let mut x = vec![0.0; dim];
    let step_opts = NewtonOptions {
        max_iterations: 2 * opts.max_iterations,
        v_step_limit: 0.5 * opts.v_step_limit,
        ..opts.clone()
    };
    let steps = 25;
    for k in 1..=steps {
        let scale = k as f64 / steps as f64;
        newton_with_engine(nl, engine, &mut x, 0.0, None, 1.0e-9, scale, &step_opts)?;
    }
    // Release the residual gmin.
    for gmin in [1.0e-10, 1.0e-11, 1.0e-12, 0.0] {
        newton_with_engine(nl, engine, &mut x, 0.0, None, gmin, 1.0, &step_opts)?;
    }
    Ok(pack_solution(nl, &x))
}

/// Splits the raw unknown vector into the public solution type.
pub(crate) fn pack_solution(nl: &Netlist, x: &[f64]) -> DcSolution {
    let n_nodes = nl.node_count();
    let mut voltages = vec![0.0; n_nodes];
    voltages[1..n_nodes].copy_from_slice(&x[..n_nodes - 1]);
    let branch_currents = x[n_nodes - 1..].to_vec();
    DcSolution {
        voltages,
        branch_currents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MosfetSpec;
    use crate::stimulus::Stimulus;
    use lnoc_tech::device::{Polarity, VtClass};
    use lnoc_tech::node45::Node45;
    use std::sync::Arc;

    #[test]
    fn resistor_divider() {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let mid = nl.node("mid");
        nl.vsource("V", top, Netlist::GROUND, Stimulus::dc(2.0));
        nl.resistor("R1", top, mid, 1.0e3).unwrap();
        nl.resistor("R2", mid, Netlist::GROUND, 3.0e3).unwrap();
        let sol = solve(&nl).unwrap();
        assert!((sol.voltage(mid) - 1.5).abs() < 1e-9);
        // Source supplies V/(R1+R2) = 0.5 mA.
        assert!((sol.branch_current(0) + 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn source_power_matches_dissipation() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GROUND, Stimulus::dc(1.0));
        nl.resistor("R", a, Netlist::GROUND, 2.0e3).unwrap();
        let sol = solve(&nl).unwrap();
        assert!((sol.total_source_power(&nl) - 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn nmos_inverter_transfer_points() {
        let tech = Node45::tt();
        let nmos = Arc::new(tech.mos(Polarity::Nmos, VtClass::Nominal));
        let pmos = Arc::new(tech.mos(Polarity::Pmos, VtClass::Nominal));
        let build = |vin: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let inp = nl.node("in");
            let out = nl.node("out");
            nl.vsource("DD", vdd, Netlist::GROUND, Stimulus::dc(1.0));
            nl.vsource("IN", inp, Netlist::GROUND, Stimulus::dc(vin));
            nl.mosfet(
                "MP",
                MosfetSpec {
                    d: out,
                    g: inp,
                    s: vdd,
                    b: vdd,
                    model: Arc::clone(&pmos),
                    w: 900e-9,
                },
            )
            .unwrap();
            nl.mosfet(
                "MN",
                MosfetSpec {
                    d: out,
                    g: inp,
                    s: Netlist::GROUND,
                    b: Netlist::GROUND,
                    model: Arc::clone(&nmos),
                    w: 450e-9,
                },
            )
            .unwrap();
            nl
        };
        let lo = build(0.0);
        let sol = solve(&lo).unwrap();
        let out = lo.find_node("out").unwrap();
        assert!(
            sol.voltage(out) > 0.95,
            "Vin=0 ⇒ out high, got {}",
            sol.voltage(out)
        );

        let hi = build(1.0);
        let sol = solve(&hi).unwrap();
        let out = hi.find_node("out").unwrap();
        assert!(
            sol.voltage(out) < 0.05,
            "Vin=1 ⇒ out low, got {}",
            sol.voltage(out)
        );
    }

    #[test]
    fn inverter_leakage_current_flows_from_supply() {
        let tech = Node45::tt();
        let nmos = Arc::new(tech.mos(Polarity::Nmos, VtClass::Nominal));
        let pmos = Arc::new(tech.mos(Polarity::Pmos, VtClass::Nominal));
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("in");
        let out = nl.node("out");
        let dd = nl.vsource("DD", vdd, Netlist::GROUND, Stimulus::dc(1.0));
        nl.vsource("IN", inp, Netlist::GROUND, Stimulus::dc(0.0));
        nl.mosfet(
            "MP",
            MosfetSpec {
                d: out,
                g: inp,
                s: vdd,
                b: vdd,
                model: pmos,
                w: 900e-9,
            },
        )
        .unwrap();
        nl.mosfet(
            "MN",
            MosfetSpec {
                d: out,
                g: inp,
                s: Netlist::GROUND,
                b: Netlist::GROUND,
                model: nmos,
                w: 450e-9,
            },
        )
        .unwrap();
        let sol = solve(&nl).unwrap();
        let i_dd = sol.supply_current(&nl, dd);
        // Input low: NMOS off but subthreshold-leaking; the supply must
        // deliver a small positive current.
        assert!(i_dd > 1e-12, "leakage {i_dd}");
        assert!(i_dd < 1e-5, "leakage {i_dd} suspiciously large");
    }

    #[test]
    fn pass_transistor_drops_a_threshold() {
        // NMOS pass gate passing a high level loses ~Vth: classic
        // behaviour the DPC scheme exploits.
        let tech = Node45::tt();
        let nmos = Arc::new(tech.mos(Polarity::Nmos, VtClass::Nominal));
        let mut nl = Netlist::new();
        let src = nl.node("src");
        let gate = nl.node("gate");
        let out = nl.node("out");
        nl.vsource("S", src, Netlist::GROUND, Stimulus::dc(1.0));
        nl.vsource("G", gate, Netlist::GROUND, Stimulus::dc(1.0));
        nl.mosfet(
            "MPASS",
            MosfetSpec {
                d: src,
                g: gate,
                s: out,
                b: Netlist::GROUND,
                model: nmos,
                w: 450e-9,
            },
        )
        .unwrap();
        // Tiny load keeping the output defined.
        nl.resistor("RL", out, Netlist::GROUND, 1.0e9).unwrap();
        let sol = solve(&nl).unwrap();
        let v_out = sol.voltage(out);
        assert!(
            (0.4..0.95).contains(&v_out),
            "pass gate output should sit a threshold below Vdd, got {v_out}"
        );
    }

    #[test]
    fn no_convergence_is_reported_not_hung() {
        // A voltage loop: two sources forcing different voltages on the
        // same node pair is singular.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, Stimulus::dc(1.0));
        nl.vsource("V2", a, Netlist::GROUND, Stimulus::dc(2.0));
        assert!(solve(&nl).is_err());
    }
}
