//! Transient analysis: backward-Euler time stepping on the shared Newton
//! kernel.
//!
//! Backward Euler is L-stable and non-oscillatory, which suits digital
//! switching waveforms: the cost is mild numerical damping, which shifts
//! absolute delays by a fraction of the step size — so the default step
//! is chosen ≪ the measured delays (0.1 ps against 50–65 ps paper-scale
//! delays), and Table 1 comparisons are ratio-based anyway.

use crate::dc::{self, Companion, NewtonOptions};
use crate::error::CircuitError;
use crate::netlist::{Device, DeviceId, Netlist, NodeId};
use crate::waveform::Waveform;

/// Specification of a transient run.
#[derive(Debug, Clone)]
pub struct TransientSpec {
    /// Stop time (s).
    pub t_stop: f64,
    /// Fixed time step (s).
    pub dt: f64,
    /// Record every `record_stride`-th step (1 = all).
    pub record_stride: usize,
    /// Newton options for each step.
    pub newton: NewtonOptions,
}

impl TransientSpec {
    /// A spec with the default Newton options and full recording.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        TransientSpec {
            t_stop,
            dt,
            record_stride: 1,
            newton: NewtonOptions {
                // Transient steps start from the previous solution, so a
                // tighter leash converges fast and robustly.
                max_iterations: 60,
                ..NewtonOptions::default()
            },
        }
    }
}

/// Result of a transient run: every recorded sample of every node and
/// branch, stored flat and strided (one contiguous allocation per signal
/// class instead of one `Vec` per sample).
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    n_nodes: usize,
    n_branches: usize,
    /// Voltage of node `i` at sample `k`: `node_samples[k * n_nodes + i]`.
    node_samples: Vec<f64>,
    /// Branch current `b` at sample `k`: `branch_samples[k * n_branches + b]`.
    branch_samples: Vec<f64>,
}

impl TransientResult {
    /// Time points of the recorded samples.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage of one node at one recorded sample.
    #[inline]
    fn node_at(&self, sample: usize, node_index: usize) -> f64 {
        self.node_samples[sample * self.n_nodes + node_index]
    }

    /// Branch current of one source at one recorded sample.
    #[inline]
    fn branch_at(&self, sample: usize, branch: usize) -> f64 {
        self.branch_samples[sample * self.n_branches + branch]
    }

    /// Voltage waveform of a node.
    pub fn voltage(&self, node: NodeId) -> Waveform {
        let v = (0..self.times.len())
            .map(|k| self.node_at(k, node.index()))
            .collect();
        Waveform::new(self.times.clone(), v)
    }

    /// Branch-current waveform of the `k`-th voltage source (current
    /// through the source from + to −; supply delivery is its negative).
    pub fn branch_current(&self, k: usize) -> Waveform {
        let v = (0..self.times.len())
            .map(|s| self.branch_at(s, k))
            .collect();
        Waveform::new(self.times.clone(), v)
    }

    /// Current a voltage source delivers into the circuit, by device id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a voltage source of `nl`.
    pub fn supply_current(&self, nl: &Netlist, id: DeviceId) -> Waveform {
        let k = nl
            .branch_index(id)
            .expect("device is not a voltage source of this netlist");
        let v = (0..self.times.len())
            .map(|s| -self.branch_at(s, k))
            .collect();
        Waveform::new(self.times.clone(), v)
    }

    /// Energy delivered by a source over `[from, to]` (J): ∫ v·i dt with
    /// `i` the delivered current.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a voltage source of `nl`.
    pub fn supply_energy(&self, nl: &Netlist, id: DeviceId, from: f64, to: f64) -> f64 {
        let k = nl
            .branch_index(id)
            .expect("device is not a voltage source of this netlist");
        let Device::VSource { pos, neg, .. } = &nl.device(id).device else {
            unreachable!("branch_index succeeded, so this is a vsource");
        };
        let (pos, neg) = (*pos, *neg);
        let mut acc = 0.0;
        for i in 1..self.times.len() {
            let (t0, t1) = (self.times[i - 1], self.times[i]);
            if t1 <= from || t0 >= to {
                continue;
            }
            let a = t0.max(from);
            let b = t1.min(to);
            // Power at the two recorded ends of the clipped interval.
            let p_at = |idx: usize| {
                let v = self.node_at(idx, pos.index()) - self.node_at(idx, neg.index());
                v * -self.branch_at(idx, k)
            };
            let (p0, p1) = (p_at(i - 1), p_at(i));
            // Linear interpolation of power onto [a, b].
            let lerp = |t: f64| {
                if t1 == t0 {
                    p1
                } else {
                    p0 + (p1 - p0) * (t - t0) / (t1 - t0)
                }
            };
            acc += 0.5 * (lerp(a) + lerp(b)) * (b - a);
        }
        acc
    }

    /// The final sample as a flat unknown vector, usable as a warm start.
    ///
    /// # Panics
    ///
    /// Panics if the result holds no samples (never happens for results
    /// returned by [`run`] / [`run_from`]).
    pub fn final_state(&self, nl: &Netlist) -> Vec<f64> {
        let n_nodes = nl.node_count();
        assert_eq!(n_nodes, self.n_nodes, "result belongs to another netlist");
        let last = self
            .times
            .len()
            .checked_sub(1)
            .expect("at least one sample");
        let v_base = last * self.n_nodes;
        let i_base = last * self.n_branches;
        let mut x = Vec::with_capacity(n_nodes - 1 + self.n_branches);
        x.extend_from_slice(&self.node_samples[v_base + 1..v_base + n_nodes]);
        x.extend_from_slice(&self.branch_samples[i_base..i_base + self.n_branches]);
        x
    }
}

/// Runs a transient analysis: DC operating point at `t = 0` (sources at
/// their initial values) followed by fixed-step backward-Euler
/// integration.
///
/// # Errors
///
/// Propagates DC/Newton convergence failures with the failing time
/// attached.
pub fn run(nl: &Netlist, spec: &TransientSpec) -> Result<TransientResult, CircuitError> {
    // The initial operating point is a full homotopy solve; do not let
    // the per-step iteration cap (tuned for warm-started steps) starve
    // it. The engine (assembler structure + factorization state) is built
    // once and shared between the DC solve and every time step.
    let mut engine = dc::Engine::new(nl, spec.newton.solver);
    let dc_opts = NewtonOptions {
        max_iterations: spec.newton.max_iterations.max(250),
        ..spec.newton.clone()
    };
    let dc_sol = dc::solve_with_engine(nl, &mut engine, &dc_opts, None)?;
    run_from_with_engine(nl, &mut engine, spec, &dc_sol)
}

/// Runs a transient analysis from an explicit initial operating point
/// (e.g. the settled end state of a previous phase).
///
/// # Errors
///
/// Propagates Newton convergence failures.
pub fn run_from(
    nl: &Netlist,
    spec: &TransientSpec,
    initial: &dc::DcSolution,
) -> Result<TransientResult, CircuitError> {
    let mut engine = dc::Engine::new(nl, spec.newton.solver);
    run_from_with_engine(nl, &mut engine, spec, initial)
}

/// The stepping loop on a caller-provided engine.
fn run_from_with_engine(
    nl: &Netlist,
    engine: &mut dc::Engine,
    spec: &TransientSpec,
    initial: &dc::DcSolution,
) -> Result<TransientResult, CircuitError> {
    let n_nodes = nl.node_count();
    let n_branches = nl.vsource_count();
    let dim = n_nodes - 1 + n_branches;

    let mut x = vec![0.0; dim];
    x[..n_nodes - 1].copy_from_slice(&initial.voltages()[1..]);
    for k in 0..n_branches {
        x[n_nodes - 1 + k] = initial.branch_current(k);
    }

    let mut v_old = initial.voltages().to_vec();

    let steps = (spec.t_stop / spec.dt).ceil() as usize;
    let recorded = steps / spec.record_stride + 2;
    let mut result = TransientResult {
        times: Vec::with_capacity(recorded),
        n_nodes,
        n_branches,
        node_samples: Vec::with_capacity(recorded * n_nodes),
        branch_samples: Vec::with_capacity(recorded * n_branches),
    };
    result.times.push(0.0);
    result.node_samples.extend_from_slice(&v_old);
    for k in 0..n_branches {
        result.branch_samples.push(initial.branch_current(k));
    }

    // Reusable save buffers for the retry/bisection logic (one per
    // recursion depth, allocated on first use, reused for every step).
    let mut save_pool: Vec<Vec<f64>> = Vec::new();
    // Predictor state: the converged unknowns of the previous two steps.
    // Linear extrapolation seeds Newton close enough that smooth regions
    // converge in one or two iterations; the corrector still iterates to
    // the same tolerances, so the accepted solution is unchanged.
    let mut x_prev = x.clone();
    let mut x_conv = vec![0.0; dim];
    let mut v_old_save = vec![0.0; n_nodes];
    // The reference engine reproduces the seed behaviour exactly —
    // including cold per-step Newton starts — so it skips the predictor.
    let use_predictor = !engine.is_reference();

    for step in 1..=steps {
        let t = step as f64 * spec.dt;
        x_conv.copy_from_slice(&x);
        v_old_save.copy_from_slice(&v_old);
        let predicted = use_predictor && step >= 2;
        if predicted {
            for i in 0..dim {
                x[i] = 2.0 * x[i] - x_prev[i];
            }
        }
        x_prev.copy_from_slice(&x_conv);
        let advanced = advance_step(
            nl,
            engine,
            &mut x,
            &mut v_old,
            t - spec.dt,
            spec.dt,
            &spec.newton,
            0,
            &mut save_pool,
        );
        if let Err(e) = advanced {
            // Only a step that started from an extrapolated guess gets a
            // second chance: an un-extrapolated step that failed would
            // deterministically fail again from identical state.
            if !predicted {
                return Err(e);
            }
            // An extrapolated guess can overshoot a sharp edge; retry the
            // whole step once from the un-extrapolated converged state
            // (restoring the companion history a failed bisection may
            // have partially advanced).
            x.copy_from_slice(&x_conv);
            v_old.copy_from_slice(&v_old_save);
            advance_step(
                nl,
                engine,
                &mut x,
                &mut v_old,
                t - spec.dt,
                spec.dt,
                &spec.newton,
                0,
                &mut save_pool,
            )?;
        }

        // Update history.
        v_old[0] = 0.0;
        v_old[1..].copy_from_slice(&x[..n_nodes - 1]);

        if step % spec.record_stride == 0 || step == steps {
            result.times.push(t);
            result.node_samples.extend_from_slice(&v_old);
            result.branch_samples.extend_from_slice(&x[n_nodes - 1..]);
        }
    }
    Ok(result)
}

/// Advances the state from `t_start` by `h` with backward Euler,
/// retrying with heavier damping and then bisecting the step (up to 4
/// levels) when Newton stalls on a sharp edge.
#[allow(clippy::too_many_arguments)]
fn advance_step(
    nl: &Netlist,
    engine: &mut dc::Engine,
    x: &mut [f64],
    v_old: &mut [f64],
    t_start: f64,
    h: f64,
    opts: &NewtonOptions,
    depth: u32,
    save_pool: &mut Vec<Vec<f64>>,
) -> Result<(), CircuitError> {
    let t_end = t_start + h;
    // Borrow a save buffer from the pool (returned before recursing).
    let mut step_start_x = save_pool.pop().unwrap_or_default();
    step_start_x.clear();
    step_start_x.extend_from_slice(x);
    let mut attempt_opts = opts.clone();
    let mut last_err = None;
    for _attempt in 0..3 {
        let companion = Companion { v_old, h };
        match dc::newton_with_engine(
            nl,
            engine,
            x,
            t_end,
            Some(&companion),
            0.0,
            1.0,
            &attempt_opts,
        ) {
            Ok(_) => {
                save_pool.push(step_start_x);
                return Ok(());
            }
            Err(e) => {
                last_err = Some(e);
                x.copy_from_slice(&step_start_x);
                attempt_opts.v_step_limit *= 0.35;
                attempt_opts.max_iterations *= 2;
            }
        }
    }
    save_pool.push(step_start_x);
    if depth >= 4 {
        return Err(last_err.expect("attempt loop ran at least once"));
    }
    // Bisect: two half-steps, refreshing the companion history between
    // them.
    let n_nodes = v_old.len();
    advance_step(
        nl,
        engine,
        x,
        v_old,
        t_start,
        0.5 * h,
        opts,
        depth + 1,
        save_pool,
    )?;
    v_old[1..].copy_from_slice(&x[..n_nodes - 1]);
    advance_step(
        nl,
        engine,
        x,
        v_old,
        t_start + 0.5 * h,
        0.5 * h,
        opts,
        depth + 1,
        save_pool,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MosfetSpec;
    use crate::stimulus::Stimulus;
    use crate::waveform::{propagation_delay, Edge};
    use lnoc_tech::device::{Polarity, VtClass};
    use lnoc_tech::node45::Node45;
    use std::sync::Arc;

    #[test]
    fn rc_time_constant() {
        // R = 1 kΩ, C = 10 fF → τ = 10 ps; v(τ) = 1 − e⁻¹ ≈ 0.632.
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource(
            "V",
            vin,
            Netlist::GROUND,
            Stimulus::ramp(0.0, 1.0, 0.0, 1e-15),
        );
        nl.resistor("R", vin, out, 1.0e3).unwrap();
        nl.capacitor("C", out, Netlist::GROUND, 10.0e-15).unwrap();
        let res = run(&nl, &TransientSpec::new(60e-12, 0.02e-12)).unwrap();
        let w = res.voltage(out);
        let v_tau = w.value_at(10e-12);
        assert!(
            (v_tau - 0.632).abs() < 0.02,
            "v(τ) = {v_tau}, expected ≈ 0.632"
        );
        assert!((w.last_value() - 1.0).abs() < 0.01);
    }

    #[test]
    fn capacitor_charge_energy_balance() {
        // Energy delivered by the source charging C to V is C·V² (half
        // stored, half burned in R), independent of R.
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        let v = nl.vsource(
            "V",
            vin,
            Netlist::GROUND,
            Stimulus::ramp(0.0, 1.0, 0.0, 1e-15),
        );
        nl.resistor("R", vin, out, 2.0e3).unwrap();
        nl.capacitor("C", out, Netlist::GROUND, 20.0e-15).unwrap();
        let res = run(&nl, &TransientSpec::new(400e-12, 0.05e-12)).unwrap();
        let e = res.supply_energy(&nl, v, 0.0, 400e-12);
        let expected = 20.0e-15 * 1.0 * 1.0; // C·V²
        assert!(
            (e - expected).abs() < 0.05 * expected,
            "E = {e}, expected ≈ {expected}"
        );
    }

    fn inverter_netlist(
        w_n: f64,
        w_p: f64,
        load_f: f64,
        stim: Stimulus,
    ) -> (Netlist, NodeId, NodeId) {
        let tech = Node45::tt();
        let nmos = Arc::new(tech.mos(Polarity::Nmos, VtClass::Nominal));
        let pmos = Arc::new(tech.mos(Polarity::Pmos, VtClass::Nominal));
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("DD", vdd, Netlist::GROUND, Stimulus::dc(1.0));
        nl.vsource("IN", inp, Netlist::GROUND, stim);
        nl.mosfet(
            "MP",
            MosfetSpec {
                d: out,
                g: inp,
                s: vdd,
                b: vdd,
                model: pmos,
                w: w_p,
            },
        )
        .unwrap();
        nl.mosfet(
            "MN",
            MosfetSpec {
                d: out,
                g: inp,
                s: Netlist::GROUND,
                b: Netlist::GROUND,
                model: nmos,
                w: w_n,
            },
        )
        .unwrap();
        nl.capacitor("CL", out, Netlist::GROUND, load_f).unwrap();
        (nl, inp, out)
    }

    #[test]
    fn inverter_switches_and_has_ps_scale_delay() {
        let (nl, inp, out) = inverter_netlist(
            450e-9,
            900e-9,
            5e-15,
            Stimulus::ramp(0.0, 1.0, 20e-12, 4e-12),
        );
        let res = run(&nl, &TransientSpec::new(120e-12, 0.05e-12)).unwrap();
        let w_in = res.voltage(inp);
        let w_out = res.voltage(out);
        assert!(w_out.first_value() > 0.95, "out starts high");
        assert!(w_out.last_value() < 0.05, "out ends low");
        let d = propagation_delay(&w_in, Edge::Rising, &w_out, Edge::Falling, 1.0, 0.0)
            .expect("delay measurable");
        assert!(
            (0.5e-12..40e-12).contains(&d),
            "45 nm inverter with 5 fF load: delay {d:.3e}"
        );
    }

    #[test]
    fn bigger_load_is_slower() {
        let small = {
            let (nl, inp, out) = inverter_netlist(
                450e-9,
                900e-9,
                2e-15,
                Stimulus::ramp(0.0, 1.0, 20e-12, 4e-12),
            );
            let res = run(&nl, &TransientSpec::new(150e-12, 0.05e-12)).unwrap();
            propagation_delay(
                &res.voltage(inp),
                Edge::Rising,
                &res.voltage(out),
                Edge::Falling,
                1.0,
                0.0,
            )
            .unwrap()
        };
        let big = {
            let (nl, inp, out) = inverter_netlist(
                450e-9,
                900e-9,
                20e-15,
                Stimulus::ramp(0.0, 1.0, 20e-12, 4e-12),
            );
            let res = run(&nl, &TransientSpec::new(150e-12, 0.05e-12)).unwrap();
            propagation_delay(
                &res.voltage(inp),
                Edge::Rising,
                &res.voltage(out),
                Edge::Falling,
                1.0,
                0.0,
            )
            .unwrap()
        };
        assert!(big > 2.0 * small, "10× load: {small:.3e} → {big:.3e}");
    }

    #[test]
    fn high_vt_inverter_is_slower_than_nominal() {
        let tech = Node45::tt();
        let mk = |vt: VtClass| {
            let nmos = Arc::new(tech.mos(Polarity::Nmos, vt));
            let pmos = Arc::new(tech.mos(Polarity::Pmos, vt));
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let inp = nl.node("in");
            let out = nl.node("out");
            nl.vsource("DD", vdd, Netlist::GROUND, Stimulus::dc(1.0));
            nl.vsource(
                "IN",
                inp,
                Netlist::GROUND,
                Stimulus::ramp(0.0, 1.0, 10e-12, 4e-12),
            );
            nl.mosfet(
                "MP",
                MosfetSpec {
                    d: out,
                    g: inp,
                    s: vdd,
                    b: vdd,
                    model: pmos,
                    w: 900e-9,
                },
            )
            .unwrap();
            nl.mosfet(
                "MN",
                MosfetSpec {
                    d: out,
                    g: inp,
                    s: Netlist::GROUND,
                    b: Netlist::GROUND,
                    model: nmos,
                    w: 450e-9,
                },
            )
            .unwrap();
            nl.capacitor("CL", out, Netlist::GROUND, 5e-15).unwrap();
            let res = run(&nl, &TransientSpec::new(100e-12, 0.05e-12)).unwrap();
            propagation_delay(
                &res.voltage(inp),
                Edge::Rising,
                &res.voltage(out),
                Edge::Falling,
                1.0,
                0.0,
            )
            .unwrap()
        };
        let nominal = mk(VtClass::Nominal);
        let high = mk(VtClass::High);
        assert!(
            high > 1.1 * nominal,
            "high-Vt must be measurably slower: {nominal:.3e} vs {high:.3e}"
        );
        assert!(
            high < 3.0 * nominal,
            "but not catastrophically so: {nominal:.3e} vs {high:.3e}"
        );
    }

    #[test]
    fn final_state_round_trips_as_warm_start() {
        let (nl, _inp, out) = inverter_netlist(450e-9, 900e-9, 5e-15, Stimulus::dc(0.0));
        let res = run(&nl, &TransientSpec::new(20e-12, 0.1e-12)).unwrap();
        let x = res.final_state(&nl);
        assert_eq!(x.len(), nl.node_count() - 1 + nl.vsource_count());
        // Node `out` should be high (input low) in the final state.
        assert!(x[out.index() - 1] > 0.9);
    }
}
