//! Criterion bench for the NoC simulator's cycle rate: active-set vs
//! reference kernel across mesh sizes and VC counts, ungated and with
//! the in-loop sleep FSM enabled. The active-set kernel must win big at
//! the low injection rates the leakage study sweeps, the gating
//! bookkeeping must stay cheap, and the VC generalization must not tax
//! the single-VC fast path.
//!
//! Set `NETSIM_BENCH_QUICK=1` (CI) to shrink the grid and sample count
//! to a smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use lnoc_netsim::{GatingPolicy, MeshConfig, SimKernel, Simulation, SleepConfig, TrafficPattern};
use std::hint::black_box;

fn bench_mesh_cycles(c: &mut Criterion) {
    let quick = std::env::var_os("NETSIM_BENCH_QUICK").is_some();
    let mut group = c.benchmark_group("netsim");
    group.sample_size(if quick { 3 } else { 10 });

    let gated = Some(SleepConfig {
        policy: GatingPolicy::IdleThreshold(4),
        wake_latency: 1,
    });
    let sizes: &[(usize, usize, f64, usize, Option<SleepConfig>)] = if quick {
        &[
            (4, 4, 0.05, 1, None),
            (16, 16, 0.005, 1, None),
            (16, 16, 0.005, 2, None),
        ]
    } else {
        &[
            (4, 4, 0.05, 1, None),
            (4, 4, 0.05, 2, None),
            (4, 4, 0.05, 4, None),
            (8, 8, 0.05, 1, None),
            (8, 8, 0.05, 1, gated),
            (8, 8, 0.05, 2, gated),
            (16, 16, 0.005, 1, None),
            (16, 16, 0.005, 2, None),
            (16, 16, 0.005, 1, gated),
            (16, 16, 0.005, 2, gated),
            (32, 32, 0.005, 1, None),
            (32, 32, 0.005, 1, gated),
        ]
    };
    let cycles = if quick { 300 } else { 1000 };

    for &(w, h, rate, vcs, gating) in sizes {
        for kernel in [SimKernel::ActiveSet, SimKernel::Reference] {
            let label = format!(
                "{w}x{h}_r{rate}_v{vcs}{}_{}_{}cy",
                if gating.is_some() { "_gated" } else { "" },
                kernel.name(),
                cycles
            );
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut sim = Simulation::new(MeshConfig {
                        width: w,
                        height: h,
                        injection_rate: rate,
                        pattern: TrafficPattern::UniformRandom,
                        packet_len_flits: 4,
                        buffer_depth: 4,
                        vcs,
                        seed: 7,
                        gating,
                        kernel,
                        ..MeshConfig::default()
                    });
                    black_box(sim.run(0, cycles))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mesh_cycles);
criterion_main!(benches);
