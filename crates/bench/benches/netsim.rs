//! Criterion bench for the NoC simulator's cycle rate: active-set vs
//! reference vs tile-sharded vs event-driven kernel across mesh sizes
//! and VC counts, ungated and with the in-loop sleep FSM enabled. The
//! active-set kernel must win big at the low injection rates the
//! leakage study sweeps, the gating bookkeeping must stay cheap, the
//! VC generalization must not tax the single-VC fast path, the
//! sharded kernel's tiling must pay at the 64×64 scale (cache
//! locality even on one thread; parallel scaling on real cores), and
//! the event kernel's time wheel must beat the active set wherever
//! the network quiesces — the low-rate rows — while staying merely
//! comparable at saturation.
//!
//! Set `NETSIM_BENCH_QUICK=1` (CI) to shrink the grid and sample count
//! to a smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use lnoc_netsim::{
    FaultPlan, GatingPolicy, MeshConfig, SimKernel, Simulation, SleepConfig, TrafficPattern,
};
use std::hint::black_box;

fn bench_mesh_cycles(c: &mut Criterion) {
    let quick = std::env::var_os("NETSIM_BENCH_QUICK").is_some();
    let mut group = c.benchmark_group("netsim");
    group.sample_size(if quick { 3 } else { 10 });

    let gated = Some(SleepConfig {
        policy: GatingPolicy::IdleThreshold(4),
        wake_latency: 1,
    });
    const SERIAL: &[SimKernel] = &[
        SimKernel::ActiveSet,
        SimKernel::Reference,
        SimKernel::EventDriven,
    ];
    const ALL: &[SimKernel] = &[
        SimKernel::ActiveSet,
        SimKernel::Reference,
        SimKernel::Sharded,
        SimKernel::EventDriven,
    ];
    /// Big meshes skip the dense reference kernel (it would dominate
    /// bench wall time without adding information).
    const FAST: &[SimKernel] = &[
        SimKernel::ActiveSet,
        SimKernel::Sharded,
        SimKernel::EventDriven,
    ];
    type Entry = (
        usize,
        usize,
        f64,
        usize,
        Option<SleepConfig>,
        &'static [SimKernel],
    );
    let sizes: &[Entry] = if quick {
        &[
            (4, 4, 0.05, 1, None, SERIAL),
            (16, 16, 0.005, 1, None, ALL),
            (16, 16, 0.005, 2, None, SERIAL),
            (64, 64, 0.005, 1, None, FAST),
        ]
    } else {
        &[
            (4, 4, 0.05, 1, None, SERIAL),
            (4, 4, 0.05, 2, None, SERIAL),
            (4, 4, 0.05, 4, None, SERIAL),
            (8, 8, 0.05, 1, None, SERIAL),
            (8, 8, 0.05, 1, gated, SERIAL),
            (8, 8, 0.05, 2, gated, SERIAL),
            (16, 16, 0.005, 1, None, ALL),
            (16, 16, 0.005, 2, None, SERIAL),
            (16, 16, 0.005, 1, gated, ALL),
            (16, 16, 0.005, 2, gated, SERIAL),
            (32, 32, 0.005, 1, None, ALL),
            (32, 32, 0.005, 1, gated, ALL),
            (64, 64, 0.005, 1, None, FAST),
            (64, 64, 0.005, 1, gated, FAST),
        ]
    };
    let cycles = if quick { 300 } else { 1000 };

    for &(w, h, rate, vcs, gating, kernels) in sizes {
        for &kernel in kernels {
            let label = format!(
                "{w}x{h}_r{rate}_v{vcs}{}_{}_{}cy",
                if gating.is_some() { "_gated" } else { "" },
                kernel.name(),
                cycles
            );
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut sim = Simulation::new(MeshConfig {
                        width: w,
                        height: h,
                        injection_rate: rate,
                        pattern: TrafficPattern::UniformRandom,
                        packet_len_flits: 4,
                        buffer_depth: 4,
                        vcs,
                        seed: 7,
                        gating,
                        kernel,
                        // Pinned tile geometry so the committed bench
                        // labels mean the same thing on every host;
                        // threads stay auto (execution detail only).
                        shards: 8,
                        ..MeshConfig::default()
                    });
                    black_box(sim.run(0, cycles))
                })
            });
        }
    }

    // Fault machinery overhead: the same 16×16 low-rate point with a
    // seeded fault plan live (two permanent link kills, one router
    // kill, one transient). Routing swaps from the static tables to
    // the FaultMap's BFS tables and every epoch boundary pays the
    // three-pass reap, so this row vs its healthy twin above is the
    // price of graceful degradation.
    for &kernel in ALL {
        let label = format!("16x16_r0.005_v1_faulted_{}_{}cy", kernel.name(), cycles);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = Simulation::new(MeshConfig {
                    width: 16,
                    height: 16,
                    injection_rate: 0.005,
                    pattern: TrafficPattern::UniformRandom,
                    packet_len_flits: 4,
                    buffer_depth: 4,
                    seed: 7,
                    kernel,
                    shards: 8,
                    faults: Some(FaultPlan {
                        seed: 17,
                        link_faults: 2,
                        router_faults: 1,
                        transient_link_faults: 1,
                        transient_duration: cycles / 4,
                        start_cycle: cycles / 8,
                        window: cycles / 2,
                        ..FaultPlan::default()
                    }),
                    ..MeshConfig::default()
                });
                black_box(sim.run(0, cycles))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mesh_cycles);
criterion_main!(benches);
