//! Criterion bench for the NoC simulator's cycle rate, ungated and with
//! the in-loop sleep FSM enabled (the gating bookkeeping must stay
//! cheap).

use criterion::{criterion_group, criterion_main, Criterion};
use lnoc_netsim::{GatingPolicy, MeshConfig, Simulation, SleepConfig, TrafficPattern};
use std::hint::black_box;

fn bench_mesh_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.sample_size(10);
    for (label, w, h, gating) in [
        ("4x4", 4usize, 4usize, None),
        ("8x8", 8, 8, None),
        (
            "8x8_gated",
            8,
            8,
            Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(4),
                wake_latency: 1,
            }),
        ),
    ] {
        group.bench_function(format!("{label}_1k_cycles"), |b| {
            b.iter(|| {
                let mut sim = Simulation::new(MeshConfig {
                    width: w,
                    height: h,
                    injection_rate: 0.05,
                    pattern: TrafficPattern::UniformRandom,
                    packet_len_flits: 4,
                    buffer_depth: 4,
                    seed: 7,
                    gating,
                    ..MeshConfig::default()
                });
                black_box(sim.run(0, 1000))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mesh_cycles);
criterion_main!(benches);
