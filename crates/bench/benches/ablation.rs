//! Ablation bench (X3): cost of the slack-driven dual-Vt assignment
//! loop on a tiny configuration — the optimizer is an offline tool, but
//! its per-candidate trial cost (two transients) is worth tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use lnoc_core::config::CrossbarConfig;
use lnoc_core::dual_vt;
use lnoc_core::scheme::Scheme;
use std::hint::black_box;

fn bench_dual_vt_assignment(c: &mut Criterion) {
    let cfg = CrossbarConfig {
        flit_bits: 16,
        sim_dt: 1.0e-12,
        ..CrossbarConfig::paper()
    };
    let mut group = c.benchmark_group("dual_vt");
    group.sample_size(10);
    group.bench_function("greedy_assign_sc", |b| {
        b.iter(|| black_box(dual_vt::assign(Scheme::Sc, &cfg, 1.05).expect("assignment runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_dual_vt_assignment);
criterion_main!(benches);
