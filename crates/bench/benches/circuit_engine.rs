//! Criterion bench for the circuit engine kernels: device evaluation,
//! dense LU, and transient stepping on an inverter chain.

use criterion::{criterion_group, criterion_main, Criterion};
use lnoc_circuit::linear::Matrix;
use lnoc_circuit::netlist::{MosfetSpec, Netlist};
use lnoc_circuit::stimulus::Stimulus;
use lnoc_circuit::transient::{self, TransientSpec};
use lnoc_tech::device::{Polarity, VtClass};
use lnoc_tech::node45::Node45;
use std::hint::black_box;
use std::sync::Arc;

fn bench_device_eval(c: &mut Criterion) {
    let tech = Node45::tt();
    let m = tech.mos(Polarity::Nmos, VtClass::Nominal);
    c.bench_function("mosfet_eval", |b| {
        b.iter(|| black_box(m.eval(black_box(1.0e-6), 0.62, 0.81, 0.12, 0.0)))
    });
}

fn bench_lu(c: &mut Criterion) {
    let n = 60;
    let mut a = Matrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j { 10.0 } else { 1.0 / (1.0 + (i + 2 * j) as f64) };
            a.set(i, j, v);
        }
    }
    c.bench_function("lu_solve_60", |b| {
        b.iter(|| {
            let mut m = a.clone();
            let mut rhs = vec![1.0; n];
            m.solve_in_place(&mut rhs).expect("well conditioned");
            black_box(rhs)
        })
    });
}

fn bench_inverter_chain_transient(c: &mut Criterion) {
    let tech = Node45::tt();
    let nmos = Arc::new(tech.mos(Polarity::Nmos, VtClass::Nominal));
    let pmos = Arc::new(tech.mos(Polarity::Pmos, VtClass::Nominal));
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    nl.vsource("DD", vdd, Netlist::GROUND, Stimulus::dc(1.0));
    let input = nl.node("s0");
    nl.vsource("IN", input, Netlist::GROUND, Stimulus::ramp(0.0, 1.0, 20e-12, 4e-12));
    let mut prev = input;
    for i in 0..5 {
        let out = nl.node(&format!("s{}", i + 1));
        nl.mosfet(
            &format!("p{i}"),
            MosfetSpec { d: out, g: prev, s: vdd, b: vdd, model: Arc::clone(&pmos), w: 0.9e-6 },
        )
        .unwrap();
        nl.mosfet(
            &format!("n{i}"),
            MosfetSpec {
                d: out,
                g: prev,
                s: Netlist::GROUND,
                b: Netlist::GROUND,
                model: Arc::clone(&nmos),
                w: 0.45e-6,
            },
        )
        .unwrap();
        nl.capacitor(&format!("c{i}"), out, Netlist::GROUND, 2.0e-15)
            .unwrap();
        prev = out;
    }
    let mut group = c.benchmark_group("transient");
    group.sample_size(10);
    group.bench_function("inverter_chain_100ps", |b| {
        b.iter(|| {
            black_box(
                transient::run(&nl, &TransientSpec::new(100e-12, 0.2e-12)).expect("runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_device_eval,
    bench_lu,
    bench_inverter_chain_transient
);
criterion_main!(benches);
