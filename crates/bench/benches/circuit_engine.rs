//! Criterion bench for the circuit engine kernels: device evaluation,
//! dense-vs-sparse linear solves, the reference-vs-fast transient engine on
//! the [`CHAIN_STAGES`]-stage (300-stage) inverter chain, and a 16×16
//! crossbar-slice characterization step.
//!
//! The `*_dense_baseline` ids run [`SolverKind::Reference`] — the seed's
//! full-restamp dense kernel — so the sparse/reuse speedup is measured
//! in-repo rather than asserted. `cargo run --release -p lnoc-bench --bin
//! bench_circuit` distills the same comparisons into `BENCH_circuit.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use lnoc_bench::circuits::{crossbar_16x16_cfg, inverter_chain, CHAIN_STAGES};
use lnoc_circuit::dc::{self, NewtonOptions, SolverKind};
use lnoc_circuit::sparse::{CscPattern, SparseLu};
use lnoc_circuit::transient::{self, TransientSpec};
use lnoc_core::scheme::Scheme;
use lnoc_core::slice::BitSlice;
use lnoc_tech::device::{Polarity, VtClass};
use lnoc_tech::node45::Node45;
use std::hint::black_box;

fn bench_device_eval(c: &mut Criterion) {
    let tech = Node45::tt();
    let m = tech.mos(Polarity::Nmos, VtClass::Nominal);
    c.bench_function("mosfet_eval", |b| {
        b.iter(|| black_box(m.eval(black_box(1.0e-6), 0.62, 0.81, 0.12, 0.0)))
    });
}

/// A banded test system shaped like an MNA matrix (dominant diagonal, a
/// few couplings per row).
fn banded_system(n: usize) -> (CscPattern, Vec<f64>) {
    let mut positions = Vec::new();
    for i in 0..n {
        positions.push((i, i));
        for d in 1..4usize {
            if i + d < n {
                positions.push((i, i + d));
                positions.push((i + d, i));
            }
        }
    }
    let pattern = CscPattern::from_positions(n, &positions);
    let mut values = vec![0.0; pattern.nnz()];
    for col in 0..n {
        for k in pattern.col_range(col) {
            let row = pattern.col_rows(col)[k - pattern.col_range(col).start];
            values[k] = if row == col {
                10.0 + (col % 7) as f64
            } else {
                1.0 / (1.0 + (row + 2 * col) as f64)
            };
        }
    }
    (pattern, values)
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu");
    for n in [12usize, 30, 60, 120] {
        let (pattern, values) = banded_system(n);
        let dense = pattern.to_dense(&values);
        group.bench_function(format!("dense_{n}"), |b| {
            b.iter(|| {
                let mut m = dense.clone();
                let mut rhs = vec![1.0; n];
                m.solve_in_place(&mut rhs).expect("well conditioned");
                black_box(rhs)
            })
        });
        group.bench_function(format!("sparse_factorize_{n}"), |b| {
            b.iter(|| {
                let mut lu = SparseLu::new(n);
                lu.factorize(&pattern, &values).expect("well conditioned");
                let mut rhs = vec![1.0; n];
                lu.solve_in_place(&mut rhs);
                black_box(rhs)
            })
        });
        // The hot-loop case: pattern + pivots reused, numbers replayed.
        let mut lu = SparseLu::new(n);
        lu.factorize(&pattern, &values).expect("well conditioned");
        group.bench_function(format!("sparse_refactorize_{n}"), |b| {
            b.iter(|| {
                lu.refactorize(&pattern, &values).expect("stable");
                let mut rhs = vec![1.0; n];
                lu.solve_in_place(&mut rhs);
                black_box(rhs)
            })
        });
    }
    group.finish();
}

fn chain_spec(solver: SolverKind) -> TransientSpec {
    let mut spec = TransientSpec::new(100e-12, 0.2e-12);
    spec.newton = NewtonOptions {
        solver,
        ..spec.newton
    };
    spec
}

fn bench_inverter_chain_transient(c: &mut Criterion) {
    let (nl, _out) = inverter_chain(CHAIN_STAGES);
    let mut group = c.benchmark_group("transient");
    group.sample_size(10);
    group.bench_function("inverter_chain_100ps", |b| {
        b.iter(|| black_box(transient::run(&nl, &chain_spec(SolverKind::Auto)).expect("runs")))
    });
    group.bench_function("inverter_chain_100ps_dense_baseline", |b| {
        b.iter(|| black_box(transient::run(&nl, &chain_spec(SolverKind::Reference)).expect("runs")))
    });
    group.finish();
}

fn bench_crossbar_slice(c: &mut Criterion) {
    // One leakage-state DC solve of a radix-16 crossbar slice — the unit
    // of work the Table 1 pipeline repeats hundreds of times.
    let cfg = crossbar_16x16_cfg();
    let mut slice = BitSlice::build(Scheme::Sdpc, &cfg);
    slice.set_grant(0, true);
    slice.set_data(0, true);
    slice.set_enable_far(true);
    let mut group = c.benchmark_group("crossbar16");
    group.sample_size(10);
    for (label, solver) in [
        ("dc_slice_sparse", SolverKind::Auto),
        ("dc_slice_dense_baseline", SolverKind::Reference),
    ] {
        let opts = NewtonOptions {
            solver,
            max_iterations: 300,
            ..NewtonOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let sol =
                    dc::solve_with(black_box(&slice.netlist), &opts, None).expect("dc converges");
                black_box(sol.total_source_power(&slice.netlist))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_device_eval,
    bench_lu,
    bench_inverter_chain_transient,
    bench_crossbar_slice
);
criterion_main!(benches);
