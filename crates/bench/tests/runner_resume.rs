//! End-to-end supervision tests against the real `gating_sweep`
//! binary: a sweep killed mid-grid (via the `--fuse` job-count fuse)
//! and resumed with `--resume` must regenerate every artifact
//! **byte-identically** to an uninterrupted run, and injected
//! panicking/deadlocking points must be isolated into the failure
//! manifest while every real point completes.

use lnoc_bench::journal::Journal;
use lnoc_bench::runner::{EXIT_FAILURES, EXIT_FUSE};
use std::path::{Path, PathBuf};
use std::process::Command;

/// The smoke grid shrunk to its cheapest shape (one kernel, one VC —
/// 8 points) with timings pinned so whole files are byte-comparable.
const BASE_ARGS: &[&str] = &[
    "--smoke",
    "--deterministic",
    "--kernel",
    "active-set",
    "--vcs",
    "1",
];

fn temp_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lnoc_resume_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp out dir");
    dir
}

fn run_sweep(out_dir: &Path, extra: &[&str]) -> i32 {
    let status = Command::new(env!("CARGO_BIN_EXE_gating_sweep"))
        .args(BASE_ARGS)
        .args(extra)
        .env("LNOC_OUT_DIR", out_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn gating_sweep");
    status.code().expect("exit code")
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("read {name} from {}: {e}", dir.display()))
}

#[test]
fn killed_sweep_resumed_is_byte_identical_to_uninterrupted() {
    let a = temp_out("a");
    let b = temp_out("b");
    // Run A: uninterrupted reference.
    assert_eq!(run_sweep(&a, &[]), 0, "uninterrupted sweep must succeed");
    // Run B: the fuse kills the sweep after 4 of 8 jobs.
    assert_eq!(
        run_sweep(&b, &["--fuse", "4"]),
        EXIT_FUSE,
        "fuse-tripped sweep must exit {EXIT_FUSE}"
    );
    // Resume: only the missing points re-run; the completed ones come
    // from the content-addressed cache.
    assert_eq!(
        run_sweep(&b, &["--resume"]),
        0,
        "resumed sweep must succeed"
    );
    let events = Journal::load(&b.join("gating_sweep_journal.jsonl"));
    let cached = events.iter().filter(|e| e.event == "cached").count();
    let fused = events.iter().filter(|e| e.event == "fuse").count();
    assert_eq!(
        cached, 4,
        "resume must serve the 4 completed points from cache"
    );
    assert_eq!(
        fused, 1,
        "the interrupted run's fuse trip stays in the journal"
    );
    // The acceptance criterion: byte-identical artifacts.
    for artifact in [
        "x3_gating_sweep_smoke.json",
        "x3_sweep_stats_active-set.json",
    ] {
        assert_eq!(
            read(&a, artifact),
            read(&b, artifact),
            "{artifact} must be byte-identical after kill + resume"
        );
    }
    // Both runs were clean — empty failure manifests, also identical.
    let manifest = read(&a, "x3_gating_sweep_failures.json");
    assert!(manifest.contains("\"failures\": []"), "{manifest}");
    assert_eq!(manifest, read(&b, "x3_gating_sweep_failures.json"));
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn injected_failures_are_isolated_and_manifested() {
    let dir = temp_out("inject");
    let code = run_sweep(
        &dir,
        &[
            "--inject-panic",
            "--inject-deadlock",
            "--max-retries",
            "1",
            "--retry-backoff-ms",
            "1",
        ],
    );
    assert_eq!(
        code, EXIT_FAILURES,
        "failed points must exit {EXIT_FAILURES}"
    );
    let manifest = read(&dir, "x3_gating_sweep_failures.json");
    // The panic was retried per policy (1 + max_retries attempts)…
    assert!(manifest.contains("\"kind\": \"panic\""), "{manifest}");
    assert!(manifest.contains("\"attempts\": 2"), "{manifest}");
    // …the deadlock failed fast with the engine's typed abort, keeping
    // the full per-lane watchdog diagnostic…
    assert!(manifest.contains("\"kind\": \"deadlock\""), "{manifest}");
    assert!(
        manifest.contains("no flit moved and no credit returned"),
        "{manifest}"
    );
    // …and every real grid point still completed: the smoke artifact
    // carries all 10 rows with clean supervision counters.
    let smoke = read(&dir, "x3_gating_sweep_smoke.json");
    let rows = smoke
        .matches("\"attempts\": 1, \"panics\": 0, \"deadline_hits\": 0")
        .count();
    assert_eq!(
        rows, 10,
        "all real points must complete despite the injected failures"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
