//! Minimal hand-rolled JSON writing and flat-object reading shared by
//! every sweep binary, the supervised [`crate::runner`] and the
//! [`crate::journal`].
//!
//! The repo vendors only the serde *data model* (no `serde_json`), and
//! the sweep artifacts are committed files whose byte layout matters —
//! so the emitters are deliberately explicit: an [`Obj`] builder that
//! writes fields in call order with the exact `{"k": v, "k2": v2}`
//! spacing the artifacts have always used, plus quote-aware readers
//! for the flat one-line objects the result cache and journal store.
//!
//! Floats that must round-trip bit-exactly through the cache travel as
//! `f64::to_bits` integers ([`Obj::f64_bits`] / [`field_f64_bits`]);
//! human-facing floats keep their historical `format!` precision and
//! go through [`Obj::raw`].

use std::fmt::Display;
use std::fmt::Write as _;

/// Escapes a string for use inside a JSON string literal (quotes,
/// backslashes and control characters; everything else passes through
/// verbatim — the artifacts are UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`] for the escapes it emits.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Single-line JSON object builder. Fields render in call order with
/// the `{"k": v, "k2": v2}` layout every sweep artifact uses.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Adds a field whose value is rendered verbatim — numbers, bools,
    /// `null`, or an already-formatted token like `format!("{v:.4}")`.
    pub fn raw(mut self, key: &str, value: impl Display) -> Self {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
        let _ = write!(self.buf, "\"{key}\": {value}");
        self
    }

    /// Adds a quoted, escaped string field.
    pub fn str(self, key: &str, value: impl Display) -> Self {
        let v = escape(&value.to_string());
        self.raw(key, format_args!("\"{v}\""))
    }

    /// Adds an `f64` as its exact bit pattern (a `u64`), so the value
    /// round-trips through text with zero loss. Read back with
    /// [`field_f64_bits`].
    pub fn f64_bits(self, key: &str, value: f64) -> Self {
        self.raw(key, value.to_bits())
    }

    /// Closes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Finds the raw (unparsed) value of `key` in a flat, single-level
/// JSON object produced by [`Obj`]. Quote-aware: commas and braces
/// inside string values do not confuse it. Returns the value slice
/// with surrounding whitespace trimmed — still quoted if it is a
/// string.
pub fn field_raw<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let mut in_str = false;
    let mut esc = false;
    let bytes = obj.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        if c == b'"' {
            // A key position: does the needle start here?
            if obj[i..].starts_with(&needle) {
                let start = i + needle.len();
                let end = value_end(obj, start);
                return Some(obj[start..end].trim());
            }
            in_str = true;
        }
        i += 1;
    }
    None
}

/// End index of the value starting at `start` (exclusive): the next
/// top-level `,` or closing `}`.
fn value_end(obj: &str, start: usize) -> usize {
    let bytes = obj.as_bytes();
    let mut in_str = false;
    let mut esc = false;
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_str = false;
            }
        } else {
            match c {
                b'"' => in_str = true,
                b',' | b'}' => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Reads a string field written by [`Obj::str`], unescaped.
pub fn field_str(obj: &str, key: &str) -> Option<String> {
    let raw = field_raw(obj, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(unescape(inner))
}

/// Reads an unsigned integer field.
pub fn field_u64(obj: &str, key: &str) -> Option<u64> {
    field_raw(obj, key)?.parse().ok()
}

/// Reads an `f64` stored as its bit pattern by [`Obj::f64_bits`].
pub fn field_f64_bits(obj: &str, key: &str) -> Option<f64> {
    Some(f64::from_bits(field_u64(obj, key)?))
}

/// Joins pre-rendered rows into a pretty array body:
/// `[\n<indent>row,\n<indent>row\n<close_indent>]`. An empty slice
/// renders `[]`.
pub fn array(rows: &[String], indent: &str, close_indent: &str) -> String {
    if rows.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(indent);
        out.push_str(r);
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str(close_indent);
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_layout_matches_historical_artifacts() {
        let o = Obj::new()
            .str("scheme", "sc")
            .raw("vcs", 2)
            .raw("rate", format_args!("{:.4}", 0.05))
            .build();
        assert_eq!(o, "{\"scheme\": \"sc\", \"vcs\": 2, \"rate\": 0.0500}");
    }

    #[test]
    fn fields_read_back_despite_commas_in_strings() {
        let o = Obj::new()
            .str("label", "mesh=4x4, policy=threshold(3), quote=\"q\"")
            .raw("n", 7)
            .build();
        assert_eq!(
            field_str(&o, "label").unwrap(),
            "mesh=4x4, policy=threshold(3), quote=\"q\""
        );
        assert_eq!(field_u64(&o, "n"), Some(7));
        assert_eq!(field_raw(&o, "missing"), None);
    }

    #[test]
    fn key_prefix_does_not_shadow() {
        let o = Obj::new().raw("wall", 1).raw("wall_s", 2).build();
        assert_eq!(field_u64(&o, "wall"), Some(1));
        assert_eq!(field_u64(&o, "wall_s"), Some(2));
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for v in [0.0, -0.0, 1.5, 0.1 + 0.2, f64::MAX, 1e-300] {
            let o = Obj::new().f64_bits("x", v).build();
            let back = field_f64_bits(&o, "x").unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        assert_eq!(unescape(&escape(s)), s);
    }

    #[test]
    fn array_renders_rows() {
        assert_eq!(array(&[], "  ", ""), "[]");
        let rows = vec!["{\"a\": 1}".to_string(), "{\"b\": 2}".to_string()];
        assert_eq!(
            array(&rows, "    ", "  "),
            "[\n    {\"a\": 1},\n    {\"b\": 2}\n  ]"
        );
    }
}
