//! Supervised, checkpointed sweep runner.
//!
//! Executes each grid point of a sweep as an **isolated job**: the job
//! closure runs on its own thread behind `catch_unwind`, under an
//! optional wall-clock deadline enforced by this supervisor (the
//! engine itself stays wall-clock-free — its half of the deadline is
//! the deterministic [`lnoc_netsim::MeshConfig::cycle_budget`]), with
//! bounded retry and exponential backoff for transient failures. A
//! panicking, deadlocking or overrunning point degrades to a recorded
//! failure while every other point completes.
//!
//! Results land in a **content-addressed cache**: each job carries a
//! canonical config digest ([`crate::digest`]) and its serialized
//! payload is stored under `<cache-dir>/<digest>.json`. Statistics are
//! a pure function of the configuration, so a digest hit is provably
//! the same bytes a re-run would produce — which is what makes
//! `--resume` sound: a killed sweep re-runs only the points that never
//! completed (or failed), and the reassembled artifacts are
//! byte-identical to an uninterrupted run.
//!
//! Every supervision decision is checkpointed in an append-only
//! [`crate::journal`] under `out/`, and points that exhaust their
//! retries are collected into a failure manifest
//! ([`failure_manifest`]).
//!
//! The retry policy is failure-kind-aware: panics and wall-clock
//! timeouts may be transient (host noise, a scheduling stall) and are
//! retried with exponential backoff; [`lnoc_netsim::SimAbort`]s are
//! deterministic properties of the configuration (a deadlock or a
//! cycle-budget overrun replays identically every time) and fail fast
//! without burning retries.

use crate::journal::{Journal, JournalEvent};
use crate::{json, out_dir};
use lnoc_netsim::SimAbort;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a job attempt stopped without producing a payload, as reported
/// by the job itself (deterministic aborts) — panics and timeouts are
/// detected by the supervisor instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobAbort {
    /// Failure class, used for retry policy and the manifest.
    pub kind: AbortKind,
    /// Human-readable error (for a deadlock, the engine's full
    /// per-lane diagnostic).
    pub message: String,
}

/// Deterministic abort classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortKind {
    /// The engine's zero-progress watchdog fired.
    Deadlock,
    /// The engine's cycle budget was exceeded (the in-engine half of a
    /// per-point deadline).
    CycleBudget,
    /// Any other configuration-determined failure.
    Other,
}

impl AbortKind {
    /// Manifest / journal name.
    pub fn name(self) -> &'static str {
        match self {
            AbortKind::Deadlock => "deadlock",
            AbortKind::CycleBudget => "cycle-budget",
            AbortKind::Other => "abort",
        }
    }
}

impl JobAbort {
    /// Maps an engine abort onto a job abort.
    pub fn from_sim(abort: SimAbort) -> JobAbort {
        let kind = match &abort {
            SimAbort::Deadlock { .. } => AbortKind::Deadlock,
            SimAbort::CycleBudgetExceeded { .. } => AbortKind::CycleBudget,
        };
        JobAbort {
            kind,
            message: abort.to_string(),
        }
    }
}

/// One isolated unit of sweep work.
pub struct Job {
    /// Human-readable label for the journal, progress output and the
    /// failure manifest.
    pub label: String,
    /// Canonical config digest — the cache key. Build it with
    /// [`crate::digest::DigestBuilder`] over *every* input that
    /// determines the payload.
    pub digest: String,
    /// The work. Called once per attempt (so it must be `Fn`, not
    /// `FnOnce`), on a supervisor-owned thread; returns the serialized
    /// payload that will be cached verbatim and handed back on every
    /// future hit — byte-identity of resumed artifacts rests on this.
    pub work: Arc<dyn Fn() -> Result<String, JobAbort> + Send + Sync>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("label", &self.label)
            .field("digest", &self.digest)
            .finish_non_exhaustive()
    }
}

impl Job {
    /// Builds a job from a label, digest and work closure.
    pub fn new(
        label: impl Into<String>,
        digest: impl Into<String>,
        work: impl Fn() -> Result<String, JobAbort> + Send + Sync + 'static,
    ) -> Job {
        Job {
            label: label.into(),
            digest: digest.into(),
            work: Arc::new(work),
        }
    }
}

/// Supervision counters for one job, recorded into the cache entry (so
/// a cached point reports the counters from the run that produced it —
/// keeping resumed artifacts byte-identical) and surfaced in the
/// schema 6 rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptMeta {
    /// Total attempts made (1 = clean first try).
    pub attempts: u32,
    /// Attempts that ended in a panic.
    pub panics: u32,
    /// Deadline hits: wall-clock timeouts plus in-engine cycle-budget
    /// aborts.
    pub deadline_hits: u32,
}

/// Final state of one job after supervision.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The job produced a payload (fresh or from the cache).
    Done {
        /// The serialized payload, byte-identical to what the job's
        /// first successful run returned.
        payload: String,
        /// Supervision counters from the run that produced the
        /// payload.
        meta: AttemptMeta,
        /// Whether the payload came from the content-addressed cache.
        from_cache: bool,
    },
    /// The job exhausted its retry policy (or aborted
    /// deterministically).
    Failed {
        /// Failure class name (`panic`, `timeout`, `deadlock`,
        /// `cycle-budget`, `abort`).
        kind: String,
        /// Last error text.
        error: String,
        /// Supervision counters.
        meta: AttemptMeta,
    },
    /// The fuse tripped before this job ran (test hook simulating a
    /// mid-sweep kill).
    NotRun,
}

impl JobStatus {
    /// The payload, if the job is done.
    pub fn payload(&self) -> Option<&str> {
        match self {
            JobStatus::Done { payload, .. } => Some(payload),
            _ => None,
        }
    }

    /// The supervision counters, if the job ran.
    pub fn meta(&self) -> Option<AttemptMeta> {
        match self {
            JobStatus::Done { meta, .. } | JobStatus::Failed { meta, .. } => Some(*meta),
            JobStatus::NotRun => None,
        }
    }
}

/// Runner configuration; build one from [`SweepFlags::runner_config`]
/// in binaries.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Content-addressed cache directory.
    pub cache_dir: PathBuf,
    /// Append-only journal path.
    pub journal_path: PathBuf,
    /// Reuse cache entries (and append to the journal) instead of
    /// starting over.
    pub resume: bool,
    /// Wall-clock deadline per attempt; `None` = unbounded. A timed-out
    /// job thread is abandoned (threads cannot be killed), so its
    /// eventual result — if any — is discarded.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first for transient failures (panics,
    /// timeouts). Deterministic aborts never retry.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per retry, capped
    /// at 10 s.
    pub backoff: Duration,
    /// Stop executing fresh jobs after this many, then report the
    /// remainder as [`JobStatus::NotRun`] — the kill-mid-sweep test
    /// hook. Cache hits do not count against the fuse.
    pub fuse: Option<u64>,
}

/// What a whole sweep's supervision produced, indexed like the job
/// slice passed to [`run_jobs`].
#[derive(Debug)]
pub struct SweepReport {
    /// Per-job final states.
    pub statuses: Vec<JobStatus>,
    /// Fresh job executions (excludes cache hits and not-run jobs).
    pub executed: u64,
    /// Jobs satisfied from the cache.
    pub cache_hits: u64,
    /// Whether the fuse tripped (some jobs did not run).
    pub fuse_tripped: bool,
}

impl SweepReport {
    /// Whether any job failed permanently.
    pub fn has_failures(&self) -> bool {
        self.statuses
            .iter()
            .any(|s| matches!(s, JobStatus::Failed { .. }))
    }

    /// Exit code for a sweep binary: 0 clean, [`EXIT_FAILURES`] if any
    /// point failed, [`EXIT_FUSE`] if the fuse tripped (the fuse
    /// dominates — an interrupted sweep is incomplete, not failed).
    pub fn exit_code(&self) -> i32 {
        if self.fuse_tripped {
            EXIT_FUSE
        } else if self.has_failures() {
            EXIT_FAILURES
        } else {
            0
        }
    }
}

/// Exit code when one or more points exhausted their retries.
pub const EXIT_FAILURES: i32 = 2;
/// Exit code when the `--fuse` job-count fuse tripped.
pub const EXIT_FUSE: i32 = 3;

/// Cache entry format version (line 1 of every entry).
const CACHE_VERSION: u64 = 1;

fn cache_path(dir: &Path, digest: &str) -> PathBuf {
    dir.join(format!("{digest}.json"))
}

/// Reads a cache entry: `(meta, payload)` on a well-formed hit.
fn read_cache(dir: &Path, digest: &str) -> Option<(AttemptMeta, String)> {
    let text = std::fs::read_to_string(cache_path(dir, digest)).ok()?;
    let (header, payload) = text.split_once('\n')?;
    if json::field_u64(header, "v") != Some(CACHE_VERSION)
        || json::field_str(header, "digest").as_deref() != Some(digest)
    {
        return None;
    }
    let meta = AttemptMeta {
        attempts: json::field_u64(header, "attempts")? as u32,
        panics: json::field_u64(header, "panics")? as u32,
        deadline_hits: json::field_u64(header, "deadline_hits")? as u32,
    };
    Some((meta, payload.to_string()))
}

/// Writes a cache entry atomically (temp file + rename), so a kill
/// mid-write can never leave a half-entry that later resumes wrong.
fn write_cache(dir: &Path, digest: &str, meta: AttemptMeta, payload: &str) {
    let header = json::Obj::new()
        .raw("v", CACHE_VERSION)
        .str("digest", digest)
        .raw("attempts", meta.attempts)
        .raw("panics", meta.panics)
        .raw("deadline_hits", meta.deadline_hits)
        .build();
    let final_path = cache_path(dir, digest);
    let tmp = dir.join(format!("{digest}.json.tmp"));
    let body = format!("{header}\n{payload}");
    std::fs::write(&tmp, body).expect("write cache entry");
    std::fs::rename(&tmp, &final_path).expect("publish cache entry");
}

/// One supervised attempt's outcome.
enum Attempt {
    Ok(String),
    Abort(JobAbort),
    Panicked(String),
    TimedOut(Duration),
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one attempt on its own thread under the optional wall-clock
/// deadline. On timeout the thread is abandoned — it keeps running
/// detached, its eventual send lands in a dropped channel.
fn supervised_attempt(
    work: Arc<dyn Fn() -> Result<String, JobAbort> + Send + Sync>,
    deadline: Option<Duration>,
) -> Attempt {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name("sweep-job".into())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work()));
            let _ = tx.send(result);
        })
        .expect("spawn job thread");
    let received = match deadline {
        Some(limit) => match rx.recv_timeout(limit) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                drop(handle); // detach: threads cannot be killed
                return Attempt::TimedOut(limit);
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(Box::new("job thread died without reporting".to_string()) as _)
            }
        },
        None => rx.recv().unwrap_or_else(|_| {
            Err(Box::new("job thread died without reporting".to_string()) as _)
        }),
    };
    let _ = handle.join();
    match received {
        Ok(Ok(payload)) => Attempt::Ok(payload),
        Ok(Err(abort)) => Attempt::Abort(abort),
        Err(panic_payload) => Attempt::Panicked(panic_text(panic_payload)),
    }
}

/// Executes `jobs` in order under the supervision policy. Jobs run
/// serially (sweep timings must stay clean), each isolated on its own
/// thread. See the module docs for the full lifecycle.
///
/// # Panics
///
/// Panics only on orchestrator-level I/O failure (cache directory or
/// journal unwritable) — job failures of every kind are *contained*
/// and reported in the returned [`SweepReport`].
pub fn run_jobs(cfg: &RunnerConfig, jobs: &[Job]) -> SweepReport {
    std::fs::create_dir_all(&cfg.cache_dir).expect("create cache dir");
    let mut journal = if cfg.resume {
        Journal::append(&cfg.journal_path)
    } else {
        Journal::fresh(&cfg.journal_path)
    }
    .expect("open journal");
    let mut record = |event: &str, job: &Job, attempt: u32, detail: &str| {
        journal.record(&JournalEvent {
            event: event.into(),
            job: job.label.clone(),
            digest: job.digest.clone(),
            attempt,
            detail: detail.into(),
        });
    };

    let mut statuses = Vec::with_capacity(jobs.len());
    let mut executed = 0u64;
    let mut cache_hits = 0u64;
    let mut fuse_tripped = false;
    for (i, job) in jobs.iter().enumerate() {
        let tag = format!("[{}/{}] {}", i + 1, jobs.len(), job.label);
        if cfg.resume {
            if let Some((meta, payload)) = read_cache(&cfg.cache_dir, &job.digest) {
                cache_hits += 1;
                record("cached", job, 0, "");
                let short = &job.digest[..job.digest.len().min(12)];
                eprintln!("{tag}: cache hit ({short})");
                statuses.push(JobStatus::Done {
                    payload,
                    meta,
                    from_cache: true,
                });
                continue;
            }
        }
        if fuse_tripped || cfg.fuse.is_some_and(|f| executed >= f) {
            if !fuse_tripped {
                fuse_tripped = true;
                record(
                    "fuse",
                    job,
                    0,
                    &format!("fuse tripped after {executed} jobs"),
                );
                eprintln!("{tag}: FUSE tripped — simulating a mid-sweep kill");
            }
            statuses.push(JobStatus::NotRun);
            continue;
        }
        executed += 1;
        let mut meta = AttemptMeta::default();
        let status = loop {
            meta.attempts += 1;
            let started = Instant::now();
            match supervised_attempt(job.work.clone(), cfg.deadline) {
                Attempt::Ok(payload) => {
                    write_cache(&cfg.cache_dir, &job.digest, meta, &payload);
                    record("done", job, meta.attempts, "");
                    eprintln!("{tag}: done in {:.2}s", started.elapsed().as_secs_f64());
                    break JobStatus::Done {
                        payload,
                        meta,
                        from_cache: false,
                    };
                }
                Attempt::Abort(abort) => {
                    // Deterministic: retrying replays the same abort.
                    if abort.kind == AbortKind::CycleBudget {
                        meta.deadline_hits += 1;
                    }
                    record("failed", job, meta.attempts, &abort.message);
                    eprintln!("{tag}: FAILED ({})", abort.kind.name());
                    break JobStatus::Failed {
                        kind: abort.kind.name().to_string(),
                        error: abort.message,
                        meta,
                    };
                }
                Attempt::Panicked(msg) => {
                    meta.panics += 1;
                    if let Some(wait) = retry_backoff(cfg, meta.attempts) {
                        record("retry", job, meta.attempts, &msg);
                        eprintln!("{tag}: panicked, retrying in {wait:?}");
                        std::thread::sleep(wait);
                    } else {
                        record("failed", job, meta.attempts, &msg);
                        eprintln!("{tag}: FAILED (panic, {} attempts)", meta.attempts);
                        break JobStatus::Failed {
                            kind: "panic".to_string(),
                            error: msg,
                            meta,
                        };
                    }
                }
                Attempt::TimedOut(limit) => {
                    meta.deadline_hits += 1;
                    let msg = format!("wall-clock deadline of {limit:?} exceeded");
                    if let Some(wait) = retry_backoff(cfg, meta.attempts) {
                        record("retry", job, meta.attempts, &msg);
                        eprintln!("{tag}: timed out, retrying in {wait:?}");
                        std::thread::sleep(wait);
                    } else {
                        record("failed", job, meta.attempts, &msg);
                        eprintln!("{tag}: FAILED (timeout, {} attempts)", meta.attempts);
                        break JobStatus::Failed {
                            kind: "timeout".to_string(),
                            error: msg,
                            meta,
                        };
                    }
                }
            }
        };
        statuses.push(status);
    }
    SweepReport {
        statuses,
        executed,
        cache_hits,
        fuse_tripped,
    }
}

/// Backoff before the next retry, or `None` when attempts are
/// exhausted. Exponential from the configured base, capped at 10 s.
fn retry_backoff(cfg: &RunnerConfig, attempts_so_far: u32) -> Option<Duration> {
    if attempts_so_far > cfg.max_retries {
        return None;
    }
    let factor = 1u32 << (attempts_so_far - 1).min(16);
    Some((cfg.backoff * factor).min(Duration::from_secs(10)))
}

/// Renders the failure manifest: one entry per permanently failed
/// point (empty `failures` array when the sweep was clean, so CI can
/// assert on the file either way).
pub fn failure_manifest(jobs: &[Job], report: &SweepReport) -> String {
    let rows: Vec<String> = jobs
        .iter()
        .zip(&report.statuses)
        .filter_map(|(job, status)| match status {
            JobStatus::Failed { kind, error, meta } => Some(
                json::Obj::new()
                    .str("job", &job.label)
                    .str("digest", &job.digest)
                    .str("kind", kind)
                    .raw("attempts", meta.attempts)
                    .raw("panics", meta.panics)
                    .raw("deadline_hits", meta.deadline_hits)
                    .str("error", error)
                    .build(),
            ),
            _ => None,
        })
        .collect();
    format!(
        "{{\n  \"failures\": {}\n}}\n",
        json::array(&rows, "    ", "  ")
    )
}

/// The shared supervision CLI flags every sweep binary accepts.
#[derive(Debug, Clone, Default)]
pub struct SweepFlags {
    /// `--cache-dir <path>` (default `out/cache/<bin>`).
    pub cache_dir: Option<PathBuf>,
    /// `--resume`: reuse cache entries and append to the journal.
    pub resume: bool,
    /// `--deadline-cycles <n>`: in-engine per-run cycle budget
    /// ([`lnoc_netsim::MeshConfig::cycle_budget`]); 0 = unlimited.
    pub deadline_cycles: u64,
    /// `--deadline-ms <n>`: wall-clock supervisor deadline per attempt.
    pub deadline_ms: Option<u64>,
    /// `--max-retries <n>` (default 2).
    pub max_retries: u32,
    /// `--retry-backoff-ms <n>` (default 200).
    pub backoff_ms: u64,
    /// `--fuse <n>`: stop after n fresh jobs (kill-mid-sweep test
    /// hook).
    pub fuse: Option<u64>,
    /// `--deterministic`: pin wall-clock fields in payloads to 0 so
    /// whole artifacts are byte-comparable across runs.
    pub deterministic: bool,
}

impl SweepFlags {
    /// Parses the shared flags out of `args` (ignores flags it does
    /// not know — binaries parse their own on top).
    ///
    /// # Panics
    ///
    /// Panics on malformed values (harness binaries want loud
    /// failures).
    pub fn parse(args: &[String]) -> SweepFlags {
        let value = |flag: &str| -> Option<&str> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
        };
        let num = |flag: &str| -> Option<u64> {
            value(flag).map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{flag} takes an integer, got {v}"))
            })
        };
        SweepFlags {
            cache_dir: value("--cache-dir").map(PathBuf::from),
            resume: args.iter().any(|a| a == "--resume"),
            deadline_cycles: num("--deadline-cycles").unwrap_or(0),
            deadline_ms: num("--deadline-ms"),
            max_retries: num("--max-retries").unwrap_or(2) as u32,
            backoff_ms: num("--retry-backoff-ms").unwrap_or(200),
            fuse: num("--fuse"),
            deterministic: args.iter().any(|a| a == "--deterministic"),
        }
    }

    /// Builds the [`RunnerConfig`] for a binary, defaulting the cache
    /// to `out/cache/<bin>` and the journal to
    /// `out/<bin>_journal.jsonl`.
    pub fn runner_config(&self, bin: &str) -> RunnerConfig {
        RunnerConfig {
            cache_dir: self
                .cache_dir
                .clone()
                .unwrap_or_else(|| out_dir().join("cache").join(bin)),
            journal_path: out_dir().join(format!("{bin}_journal.jsonl")),
            resume: self.resume,
            deadline: self.deadline_ms.map(Duration::from_millis),
            max_retries: self.max_retries,
            backoff: Duration::from_millis(self.backoff_ms),
            fuse: self.fuse,
        }
    }

    /// One-line summary for the journal's `sweep-start` event.
    pub fn summary(&self) -> String {
        format!(
            "resume={} deadline_cycles={} deadline_ms={:?} max_retries={} fuse={:?} deterministic={}",
            self.resume,
            self.deadline_cycles,
            self.deadline_ms,
            self.max_retries,
            self.fuse,
            self.deterministic
        )
    }
}

/// The `--help` text block for the shared supervision flags; binaries
/// print it after their own usage lines.
pub const FLAGS_HELP: &str = "\
Supervision flags (shared by every sweep binary):
  --cache-dir <path>      content-addressed result cache (default out/cache/<bin>)
  --resume                reuse cache entries; re-run only missing/failed points;
                          append to the journal instead of truncating it
  --deadline-cycles <n>   in-engine cycle budget per run (deterministic; 0 = off)
  --deadline-ms <n>       wall-clock deadline per attempt (supervisor-side)
  --max-retries <n>       extra attempts for transient failures (default 2);
                          deterministic aborts (deadlock, cycle budget) never retry
  --retry-backoff-ms <n>  base retry backoff, doubles per retry (default 200)
  --fuse <n>              stop after n fresh jobs and exit 3 (simulated kill)
  --deterministic         pin wall-time fields to 0 so artifacts are byte-comparable
  --help                  print usage and exit

Exit codes: 0 clean; 2 some points failed (see the failure manifest);
3 the --fuse tripped (sweep incomplete; finish it with --resume).";

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn test_cfg(name: &str) -> RunnerConfig {
        let root =
            std::env::temp_dir().join(format!("lnoc_runner_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        RunnerConfig {
            cache_dir: root.join("cache"),
            journal_path: root.join("journal.jsonl"),
            resume: false,
            deadline: None,
            max_retries: 2,
            backoff: Duration::from_millis(1),
            fuse: None,
        }
    }

    #[test]
    fn payloads_cache_and_resume_skips_completed() {
        let cfg = test_cfg("cache");
        let calls = Arc::new(Mutex::new(0u32));
        let c = calls.clone();
        let jobs = vec![Job::new("p0", "d0", move || {
            *c.lock().expect("counter") += 1;
            Ok("payload-bytes".to_string())
        })];
        let first = run_jobs(&cfg, &jobs);
        assert_eq!(first.executed, 1);
        assert_eq!(first.statuses[0].payload(), Some("payload-bytes"));
        // Resume: served from cache, closure not called again.
        let resumed = run_jobs(
            &RunnerConfig {
                resume: true,
                ..cfg.clone()
            },
            &jobs,
        );
        assert_eq!(resumed.cache_hits, 1);
        assert_eq!(resumed.executed, 0);
        assert_eq!(resumed.statuses[0].payload(), Some("payload-bytes"));
        assert_eq!(*calls.lock().expect("counter"), 1);
        // Without --resume the cache is ignored and the job re-runs.
        let fresh = run_jobs(&cfg, &jobs);
        assert_eq!(fresh.executed, 1);
        assert_eq!(*calls.lock().expect("counter"), 2);
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().expect("root"));
    }

    #[test]
    fn transient_panic_retries_then_succeeds() {
        let cfg = test_cfg("retry");
        let calls = Arc::new(Mutex::new(0u32));
        let c = calls.clone();
        let jobs = vec![Job::new("flaky", "d1", move || {
            let mut n = c.lock().unwrap_or_else(|p| p.into_inner());
            *n += 1;
            if *n < 3 {
                panic!("transient failure #{n}");
            }
            Ok("ok".to_string())
        })];
        let report = run_jobs(&cfg, &jobs);
        let JobStatus::Done {
            meta, from_cache, ..
        } = &report.statuses[0]
        else {
            panic!("flaky job must succeed on the third attempt");
        };
        assert!(!from_cache);
        assert_eq!(meta.attempts, 3);
        assert_eq!(meta.panics, 2);
        // The counters are recorded in the cache entry.
        let resumed = run_jobs(
            &RunnerConfig {
                resume: true,
                ..cfg.clone()
            },
            &jobs,
        );
        assert_eq!(resumed.statuses[0].meta().expect("meta").panics, 2);
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().expect("root"));
    }

    #[test]
    fn permanent_panic_exhausts_retries_and_lands_in_manifest() {
        let cfg = test_cfg("manifest");
        let jobs = vec![
            Job::new("good", "dg", || Ok("fine".to_string())),
            Job::new("bad", "db", || panic!("always broken")),
            Job::new("also-good", "dag", || Ok("fine too".to_string())),
        ];
        let report = run_jobs(&cfg, &jobs);
        // Isolation: neighbours complete.
        assert!(report.statuses[0].payload().is_some());
        assert!(report.statuses[2].payload().is_some());
        let JobStatus::Failed { kind, meta, .. } = &report.statuses[1] else {
            panic!("always-panicking job must fail");
        };
        assert_eq!(kind, "panic");
        assert_eq!(meta.attempts, 3, "1 try + max_retries=2");
        assert_eq!(report.exit_code(), EXIT_FAILURES);
        let manifest = failure_manifest(&jobs, &report);
        assert!(manifest.contains("\"job\": \"bad\""), "{manifest}");
        assert!(manifest.contains("always broken"), "{manifest}");
        assert!(!manifest.contains("good"), "clean jobs stay out");
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().expect("root"));
    }

    #[test]
    fn deterministic_abort_fails_fast_without_retries() {
        let cfg = test_cfg("abort");
        let calls = Arc::new(Mutex::new(0u32));
        let c = calls.clone();
        let jobs = vec![Job::new("wedged", "dw", move || {
            *c.lock().expect("counter") += 1;
            Err(JobAbort {
                kind: AbortKind::Deadlock,
                message: "watchdog: ...".to_string(),
            })
        })];
        let report = run_jobs(&cfg, &jobs);
        let JobStatus::Failed { kind, meta, .. } = &report.statuses[0] else {
            panic!("abort must fail");
        };
        assert_eq!(kind, "deadlock");
        assert_eq!(meta.attempts, 1, "deterministic aborts never retry");
        assert_eq!(*calls.lock().expect("counter"), 1);
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().expect("root"));
    }

    #[test]
    fn wall_deadline_times_out_and_counts_deadline_hits() {
        let cfg = RunnerConfig {
            deadline: Some(Duration::from_millis(20)),
            max_retries: 1,
            ..test_cfg("deadline")
        };
        let jobs = vec![Job::new("slow", "ds", || {
            std::thread::sleep(Duration::from_secs(5));
            Ok("too late".to_string())
        })];
        let report = run_jobs(&cfg, &jobs);
        let JobStatus::Failed { kind, meta, .. } = &report.statuses[0] else {
            panic!("slow job must time out");
        };
        assert_eq!(kind, "timeout");
        assert_eq!(meta.attempts, 2);
        assert_eq!(meta.deadline_hits, 2);
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().expect("root"));
    }

    #[test]
    fn fuse_trips_after_n_fresh_jobs_and_resume_finishes() {
        let cfg = RunnerConfig {
            fuse: Some(1),
            ..test_cfg("fuse")
        };
        let jobs = vec![
            Job::new("a", "da", || Ok("A".to_string())),
            Job::new("b", "db2", || Ok("B".to_string())),
        ];
        let report = run_jobs(&cfg, &jobs);
        assert!(report.fuse_tripped);
        assert_eq!(report.exit_code(), EXIT_FUSE);
        assert!(matches!(report.statuses[1], JobStatus::NotRun));
        // Resume without the fuse completes only the missing job.
        let finish = run_jobs(
            &RunnerConfig {
                fuse: None,
                resume: true,
                ..cfg.clone()
            },
            &jobs,
        );
        assert_eq!(finish.cache_hits, 1);
        assert_eq!(finish.executed, 1);
        assert_eq!(finish.exit_code(), 0);
        assert_eq!(finish.statuses[1].payload(), Some("B"));
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().expect("root"));
    }
}
