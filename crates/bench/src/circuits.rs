//! Shared benchmark circuits: the inverter chain and the crossbar-slice
//! configurations used by both the Criterion benches and the
//! `bench_circuit` baseline emitter, so the two always measure the same
//! workloads.

use lnoc_circuit::netlist::{MosfetSpec, Netlist, NodeId};
use lnoc_circuit::stimulus::Stimulus;
use lnoc_core::config::CrossbarConfig;
use lnoc_tech::device::{Polarity, VtClass};
use lnoc_tech::node45::Node45;
use std::sync::Arc;

/// Builds an `stages`-deep 45 nm inverter chain driven by a rising ramp,
/// with a 2 fF load per stage. Returns the netlist and the final output
/// node. At the benchmark depth ([`CHAIN_STAGES`] = 300) the MNA system
/// has ~300 unknowns — big enough that the dense-vs-sparse solve
/// asymptotics dominate, small enough to stay a sub-second benchmark.
pub fn inverter_chain(stages: usize) -> (Netlist, NodeId) {
    let tech = Node45::tt();
    let nmos = Arc::new(tech.mos(Polarity::Nmos, VtClass::Nominal));
    let pmos = Arc::new(tech.mos(Polarity::Pmos, VtClass::Nominal));
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    nl.vsource("DD", vdd, Netlist::GROUND, Stimulus::dc(1.0));
    let input = nl.node("s0");
    nl.vsource(
        "IN",
        input,
        Netlist::GROUND,
        Stimulus::ramp(0.0, 1.0, 20e-12, 4e-12),
    );
    let mut prev = input;
    for i in 0..stages {
        let out = nl.node(&format!("s{}", i + 1));
        nl.mosfet(
            &format!("p{i}"),
            MosfetSpec {
                d: out,
                g: prev,
                s: vdd,
                b: vdd,
                model: Arc::clone(&pmos),
                w: 0.9e-6,
            },
        )
        .expect("positive width");
        nl.mosfet(
            &format!("n{i}"),
            MosfetSpec {
                d: out,
                g: prev,
                s: Netlist::GROUND,
                b: Netlist::GROUND,
                model: Arc::clone(&nmos),
                w: 0.45e-6,
            },
        )
        .expect("positive width");
        nl.capacitor(&format!("c{i}"), out, Netlist::GROUND, 2.0e-15)
            .expect("non-negative load");
        prev = out;
    }
    (nl, prev)
}

/// The benchmark's standard chain depth (the `inverter_chain_100ps` id
/// refers to the 100 ps simulated window). 300 stages ≈ a repeated
/// long-wire driver chain; the MNA system has ~300 unknowns, deep into the
/// regime where the dense-vs-sparse solve asymptotics dominate.
pub const CHAIN_STAGES: usize = 300;

/// A 16×16 (radix 16) crossbar configuration for slice-scale benches: the
/// generated bit-slice MNA system has ~70 unknowns, representative of
/// scaled-up NoC routers rather than the paper's 5×5 case.
pub fn crossbar_16x16_cfg() -> CrossbarConfig {
    CrossbarConfig {
        radix: 16,
        flit_bits: 64,
        sim_dt: 0.5e-12,
        ..CrossbarConfig::paper()
    }
}

/// The configuration used for whole-Table-1 benchmarking: the scaled-up
/// radix-16 router (where slice systems are large enough that solve cost,
/// not device evaluation, dominates the reference kernel).
pub fn table1_bench_cfg() -> CrossbarConfig {
    crossbar_16x16_cfg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_expected_size() {
        let (nl, _out) = inverter_chain(10);
        // vdd + s0..s10 + ground.
        assert_eq!(nl.node_count(), 13);
        assert_eq!(nl.vsource_count(), 2);
    }

    #[test]
    fn crossbar_cfg_is_valid() {
        assert!(crossbar_16x16_cfg().validate().is_ok());
        assert!(table1_bench_cfg().validate().is_ok());
    }
}
