//! Append-only sweep journal: one JSON line per supervision event.
//!
//! The journal is the sweep's progress checkpoint and audit trail,
//! written under `out/` next to the artifacts it describes. Every
//! runner decision lands here the moment it is made — cache hit, job
//! completion, retry, permanent failure, fuse trip — so a killed sweep
//! leaves an exact record of where it stopped, and a resumed sweep
//! appends to the same file instead of rewriting history.
//!
//! Resume *correctness* does not depend on parsing the journal: the
//! content-addressed result cache (see [`crate::runner`]) is the source
//! of truth for what is already done. The journal exists so humans and
//! CI can see what happened — `grep '"event": "failed"'` is the
//! failure story of a sweep.
//!
//! Line format (flat, one object per line, written by
//! [`crate::json::Obj`]):
//!
//! ```json
//! {"event": "done", "job": "<label>", "digest": "<32 hex>", "attempt": 1, "detail": ""}
//! ```
//!
//! Events: `sweep-start`, `cached`, `done`, `retry`, `failed`,
//! `fuse`. `detail` carries the error text for `retry`/`failed` and
//! the flag summary for `sweep-start`.

use crate::json;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One journal line, parsed or about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Event kind (`sweep-start`, `cached`, `done`, `retry`,
    /// `failed`, `fuse`).
    pub event: String,
    /// The job's human-readable label.
    pub job: String,
    /// The job's canonical config digest (empty for sweep-level
    /// events).
    pub digest: String,
    /// 1-based attempt number the event refers to (0 for events that
    /// precede any attempt).
    pub attempt: u32,
    /// Error text or free-form detail.
    pub detail: String,
}

impl JournalEvent {
    /// Renders the event as its journal line (no trailing newline).
    pub fn to_line(&self) -> String {
        json::Obj::new()
            .str("event", &self.event)
            .str("job", &self.job)
            .str("digest", &self.digest)
            .raw("attempt", self.attempt)
            .str("detail", &self.detail)
            .build()
    }

    /// Parses a journal line written by [`JournalEvent::to_line`].
    pub fn parse(line: &str) -> Option<JournalEvent> {
        Some(JournalEvent {
            event: json::field_str(line, "event")?,
            job: json::field_str(line, "job")?,
            digest: json::field_str(line, "digest")?,
            attempt: json::field_u64(line, "attempt")? as u32,
            detail: json::field_str(line, "detail")?,
        })
    }
}

/// Append-only journal writer. Every record is flushed on write — the
/// whole point is surviving a kill.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens the journal for appending, creating it (and its parent
    /// directory) if needed. Used by `--resume`.
    pub fn append(path: &Path) -> std::io::Result<Journal> {
        Self::open(path, false)
    }

    /// Starts a fresh journal, truncating any previous one. Used when
    /// a sweep starts over.
    pub fn fresh(path: &Path) -> std::io::Result<Journal> {
        Self::open(path, true)
    }

    fn open(path: &Path, truncate: bool) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(!truncate)
            .write(true)
            .truncate(truncate)
            .open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event and flushes it to disk.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure — a sweep whose checkpoint cannot be
    /// written must fail loudly, not quietly lose its resume point.
    pub fn record(&mut self, event: &JournalEvent) {
        let mut line = event.to_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .expect("append journal line");
        self.file.flush().expect("flush journal");
    }

    /// Reads every parseable event from a journal file. Missing file
    /// reads as empty (a fresh sweep has no history).
    pub fn load(path: &Path) -> Vec<JournalEvent> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines().filter_map(JournalEvent::parse).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(event: &str, job: &str, attempt: u32, detail: &str) -> JournalEvent {
        JournalEvent {
            event: event.into(),
            job: job.into(),
            digest: "abc123".into(),
            attempt,
            detail: detail.into(),
        }
    }

    #[test]
    fn events_round_trip_through_lines() {
        let e = ev("retry", "mesh=4x4, vcs=2", 2, "panic: \"boom\"\nline2");
        let parsed = JournalEvent::parse(&e.to_line()).expect("parses");
        assert_eq!(parsed, e);
    }

    #[test]
    fn journal_appends_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("lnoc_journal_test_{}", std::process::id()));
        let path = dir.join("j.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::fresh(&path).expect("fresh");
            j.record(&ev("sweep-start", "", 0, "smoke"));
            j.record(&ev("done", "p0", 1, ""));
        }
        {
            let mut j = Journal::append(&path).expect("append");
            j.record(&ev("cached", "p0", 0, ""));
        }
        let events = Journal::load(&path);
        assert_eq!(events.len(), 3, "append preserved prior lines");
        assert_eq!(events[0].event, "sweep-start");
        assert_eq!(events[2].event, "cached");
        // A fresh open truncates.
        let _ = Journal::fresh(&path).expect("fresh again");
        assert!(Journal::load(&path).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
