//! Canonical configuration digests for the content-addressed sweep
//! result cache.
//!
//! A simulation's statistics are a *pure function* of its
//! configuration — seed, mesh, VC count, policy, kernel, shard
//! geometry, fault plan — bit-identical across kernels, shard counts
//! and thread counts by the engine's core guarantee. That makes a
//! config digest a sound cache key: if the digest matches, the cached
//! result is exactly what a re-run would produce.
//!
//! The digest is **canonical**: fields are named, and the hash runs
//! over the fields sorted by name, so two call sites that write the
//! same fields in different orders produce the same digest (verified
//! by proptest). Floats hash by their exact bit pattern. The `domain`
//! string versions the encoding — bump it whenever the payload format
//! or the set of digested fields changes, and every stale cache entry
//! silently misses instead of resurrecting old bytes.

use crate::json;
use lnoc_netsim::MeshConfig;
use std::fmt::Display;
use std::fmt::Write as _;

/// 64-bit FNV-1a offset basis / prime.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis for the second lane (the first basis byte-rotated), so
/// the two lanes disagree on every stream and the combined digest is
/// effectively 128-bit against accidental collisions.
const FNV_OFFSET_B: u64 = 0x2325_cbf2_9ce4_8422;

/// Accumulates named fields and hashes them order-independently.
#[derive(Debug, Clone)]
pub struct DigestBuilder {
    domain: String,
    fields: Vec<(String, String)>,
}

impl DigestBuilder {
    /// Starts a digest in the given domain (format-version salt).
    pub fn new(domain: &str) -> Self {
        DigestBuilder {
            domain: domain.to_string(),
            fields: Vec::new(),
        }
    }

    /// Adds a named field with a canonical textual value (integers,
    /// bools, enum names — anything whose `Display` is injective for
    /// the values it can take).
    pub fn field(mut self, name: &str, value: impl Display) -> Self {
        self.fields.push((name.to_string(), value.to_string()));
        self
    }

    /// Adds an `f64` by its exact bit pattern — `0.1 + 0.2` and `0.3`
    /// digest differently, as they must.
    pub fn f64(self, name: &str, value: f64) -> Self {
        self.field(name, format_args!("f64:{:016x}", value.to_bits()))
    }

    /// Finishes the digest: 32 hex characters over the sorted fields.
    ///
    /// # Panics
    ///
    /// Panics if two fields share a name — a silent overwrite would
    /// weaken the key.
    pub fn finish(mut self) -> String {
        self.fields.sort();
        for pair in self.fields.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate digest field");
        }
        let mut a = FNV_OFFSET;
        let mut b = FNV_OFFSET_B;
        let mut eat = |bytes: &[u8]| {
            for &byte in bytes {
                a = (a ^ byte as u64).wrapping_mul(FNV_PRIME);
                b = (b ^ byte as u64).wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.domain.as_bytes());
        eat(&[0x1f]);
        for (name, value) in &self.fields {
            eat(name.as_bytes());
            eat(&[0x3d]); // '='
            eat(value.as_bytes());
            eat(&[0x1e]); // record separator: ("ab","c") != ("a","bc")
        }
        let mut hex = String::with_capacity(32);
        let _ = write!(hex, "{a:016x}{b:016x}");
        hex
    }
}

/// Digests every field of a [`MeshConfig`] under a `mesh.` prefix.
///
/// The destructuring is deliberately exhaustive: adding a field to
/// `MeshConfig` breaks this function at compile time, forcing the
/// cache key to learn about it (and the `domain` to be bumped) instead
/// of silently serving stale results.
pub fn mesh_config(b: DigestBuilder, cfg: &MeshConfig) -> DigestBuilder {
    let MeshConfig {
        width,
        height,
        injection_rate,
        pattern,
        packet_len_flits,
        buffer_depth,
        vcs,
        seed,
        wrap,
        injection,
        gating,
        kernel,
        validate_ejection,
        source_queue_cap,
        watchdog_cycles,
        panic_on_deadlock,
        cycle_budget,
        shards,
        threads,
        faults,
        eager_settlement,
    } = cfg;
    b.field("mesh.width", width)
        .field("mesh.height", height)
        .f64("mesh.injection_rate", *injection_rate)
        .field("mesh.pattern", pattern.name())
        .field("mesh.packet_len_flits", packet_len_flits)
        .field("mesh.buffer_depth", buffer_depth)
        .field("mesh.vcs", vcs)
        .field("mesh.seed", seed)
        .field("mesh.wrap", wrap)
        // Derived Debug prints every field of these nested structs, so
        // any change to a dwell time, a policy threshold or a fault
        // plan (events included) changes the key.
        .field("mesh.injection", format_args!("{injection:?}"))
        .field("mesh.gating", format_args!("{gating:?}"))
        .field("mesh.kernel", kernel.name())
        .field("mesh.validate_ejection", validate_ejection)
        .field("mesh.source_queue_cap", source_queue_cap)
        .field("mesh.watchdog_cycles", watchdog_cycles)
        .field("mesh.panic_on_deadlock", panic_on_deadlock)
        .field("mesh.cycle_budget", cycle_budget)
        .field("mesh.shards", shards)
        .field("mesh.threads", threads)
        .field("mesh.faults", format_args!("{faults:?}"))
        .field("mesh.eager_settlement", eager_settlement)
}

/// Renders the digest (with its domain) as the one-line JSON header a
/// cache entry or journal line carries.
pub fn digest_header(domain: &str, digest: &str) -> String {
    json::Obj::new()
        .str("domain", domain)
        .str("digest", digest)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnoc_netsim::{FaultPlan, SimKernel, TrafficPattern};
    use proptest::prelude::*;

    fn digest_of(cfg: &MeshConfig, warmup: u64, measure: u64) -> String {
        mesh_config(DigestBuilder::new("test.v1"), cfg)
            .field("warmup", warmup)
            .field("measure", measure)
            .finish()
    }

    #[test]
    fn stable_across_field_write_order() {
        let a = DigestBuilder::new("d")
            .field("x", 1)
            .f64("y", 0.25)
            .field("z", "s")
            .finish();
        let b = DigestBuilder::new("d")
            .field("z", "s")
            .field("x", 1)
            .f64("y", 0.25)
            .finish();
        assert_eq!(a, b);
    }

    #[test]
    fn domain_salts_the_key() {
        let a = DigestBuilder::new("v1").field("x", 1).finish();
        let b = DigestBuilder::new("v2").field("x", 1).finish();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate digest field")]
    fn duplicate_field_names_refuse() {
        let _ = DigestBuilder::new("d").field("x", 1).field("x", 2).finish();
    }

    #[test]
    fn record_separators_prevent_field_gluing() {
        let a = DigestBuilder::new("d").field("ab", "c").finish();
        let b = DigestBuilder::new("d").field("a", "bc").finish();
        assert_ne!(a, b);
    }

    proptest! {
        /// Injectivity across neighbouring grid configs: perturbing any
        /// single sweep-grid dimension must change the digest.
        #[test]
        fn injective_across_neighbouring_grid_configs(
            width in 2usize..9,
            height in 2usize..9,
            vcs in 1usize..4,
            seed in 0u64..1000,
            rate_milli in 1u64..200,
            wrap_bit in 0u8..2,
            faults in 0usize..3,
            warmup in 0u64..500,
            measure in 1u64..5000,
        ) {
            let wrap = wrap_bit == 1;
            let base = MeshConfig {
                width,
                height,
                vcs,
                seed,
                injection_rate: rate_milli as f64 / 1000.0,
                wrap,
                pattern: TrafficPattern::UniformRandom,
                faults: (faults > 0).then(|| FaultPlan {
                    link_faults: faults,
                    ..FaultPlan::default()
                }),
                ..MeshConfig::default()
            };
            let d0 = digest_of(&base, warmup, measure);
            // Every single-field neighbour digests differently.
            let neighbours = [
                MeshConfig { width: width + 1, ..base.clone() },
                MeshConfig { height: height + 1, ..base.clone() },
                MeshConfig { vcs: vcs + 1, ..base.clone() },
                MeshConfig { seed: seed + 1, ..base.clone() },
                MeshConfig {
                    injection_rate: (rate_milli + 1) as f64 / 1000.0,
                    ..base.clone()
                },
                MeshConfig { wrap: !wrap, ..base.clone() },
                MeshConfig { kernel: SimKernel::Reference, ..base.clone() },
                MeshConfig { shards: base.shards + 1, ..base.clone() },
                MeshConfig { cycle_budget: 123, ..base.clone() },
                MeshConfig {
                    faults: Some(FaultPlan {
                        link_faults: faults + 1,
                        ..FaultPlan::default()
                    }),
                    ..base.clone()
                },
            ];
            for (i, n) in neighbours.iter().enumerate() {
                let dn = digest_of(n, warmup, measure);
                prop_assert!(d0 != dn, "neighbour {i} collided: {d0}");
            }
            let dw = digest_of(&base, warmup + 1, measure);
            prop_assert!(d0 != dw, "warmup change collided");
            let dm = digest_of(&base, warmup, measure + 1);
            prop_assert!(d0 != dm, "measure change collided");
            // And the digest is a pure function of the config.
            prop_assert_eq!(&d0, &digest_of(&base.clone(), warmup, measure));
        }
    }
}
