//! # lnoc-bench — experiment harnesses
//!
//! One binary per paper artifact (see `DESIGN.md` §4):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 (all rows, all schemes) + abstract ranges + segmentation claims (T1, T1a, T1b) |
//! | `figures` | Figures 1–3 as SPICE/DOT schematics (F1–F3) |
//! | `idle_sweep` | minimum-idle-time vs clock frequency (X1) |
//! | `noc_sweep` | mesh-level gating savings across traffic patterns and loads (X2) |
//!
//! The Criterion benches (`benches/`) measure the *engine* itself
//! (device evaluation, DC solve, transient step, netsim cycle rate) so
//! performance regressions in the simulator are caught independently of
//! the physics results.
//!
//! The sweep binaries run on the supervised, checkpointed [`runner`]:
//! each grid point executes as an isolated job with panic capture,
//! deadline enforcement and bounded retry, its result checkpointed in a
//! content-addressed cache keyed by a canonical config [`digest`] and
//! journalled ([`journal`]) so a killed sweep resumes exactly where it
//! stopped and regenerates byte-identical artifacts.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod circuits;
pub mod digest;
pub mod journal;
pub mod json;
pub mod runner;

use std::fs;
use std::path::{Path, PathBuf};

/// Output directory for regenerated artifacts: `LNOC_OUT_DIR` if set
/// (tests isolate runs with it), otherwise `out/` at the workspace
/// root. Created if needed.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn out_dir() -> PathBuf {
    let dir = match std::env::var_os("LNOC_OUT_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("out"),
    };
    fs::create_dir_all(&dir).expect("create out/ directory");
    dir
}

/// Writes an artifact file and reports it on stdout.
///
/// # Panics
///
/// Panics on I/O failure (harness binaries want loud failures).
pub fn write_artifact(name: &str, content: &str) {
    let path = out_dir().join(name);
    fs::write(&path, content).expect("write artifact");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_exists_after_call() {
        let d = out_dir();
        assert!(d.is_dir());
    }
}
