//! Experiment X3: in-loop gating sweep. Runs the mesh simulator with
//! the sleep FSM live in the cycle loop over a mesh-size ×
//! injection-rate × policy × scheme grid and emits the committed
//! `BENCH_noc.json` baseline: energy saved, the latency/throughput
//! penalty the offline model cannot see, the in-loop vs offline
//! agreement on every point — and, per grid point, the wall time and
//! cycle rate of **both simulation kernels**, so the active-set
//! speedup is tracked in-repo alongside the energy numbers.
//!
//! Grid points run serially (characterization is still parallel) so
//! the per-kernel timings are not distorted by core contention. When
//! both kernels run, their [`NetworkStats`] are asserted bit-identical;
//! single-kernel runs write a deterministic per-point stats digest to
//! `out/x3_sweep_stats_<kernel>.json` so CI can diff the kernels as
//! files.
//!
//! ```sh
//! cargo run --release -p lnoc-bench --bin gating_sweep                # full grid → BENCH_noc.json
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke     # CI smoke grid → out/
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke --kernel reference
//! ```

use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_netsim::{MeshConfig, NetworkStats, SimKernel, Simulation, SleepConfig, TrafficPattern};
use lnoc_power::gating::{
    energy_from_counters, evaluate_policy, GatingOutcome, GatingParams, GatingPolicy,
};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// One point of the sweep grid (kernel-independent).
struct GridPoint {
    scheme: Scheme,
    params: GatingParams,
    mesh: (usize, usize),
    rate: f64,
    policy: GatingPolicy,
    warmup: u64,
    measure: u64,
}

/// One timed kernel execution of a grid point.
struct Row {
    point_idx: usize,
    kernel: SimKernel,
    stats: NetworkStats,
    wall_s: f64,
    cycles_per_sec: f64,
}

fn mesh_cfg(point: &GridPoint, kernel: SimKernel) -> MeshConfig {
    MeshConfig {
        width: point.mesh.0,
        height: point.mesh.1,
        injection_rate: point.rate,
        pattern: TrafficPattern::UniformRandom,
        packet_len_flits: 4,
        buffer_depth: 4,
        seed: 2005,
        // Every policy (including Never) runs through the FSM so
        // counters are collected; Never simply never sleeps.
        gating: Some(SleepConfig {
            policy: point.policy,
            wake_latency: point.params.wake_latency_cycles,
        }),
        kernel,
        ..MeshConfig::default()
    }
}

fn run_point(point: &GridPoint, kernel: SimKernel, reps: u32) -> (NetworkStats, f64, f64) {
    // Construction (including the active-set kernel's route-table
    // build) stays outside the timer: cycle rate measures the loop.
    // Best-of-`reps` wall time — the repeats are identical simulations,
    // so the minimum is the least-noise estimate.
    let mut best: Option<(NetworkStats, f64)> = None;
    for _ in 0..reps.max(1) {
        let mut sim = Simulation::new(mesh_cfg(point, kernel));
        let start = Instant::now();
        let stats = sim.run(point.warmup, point.measure);
        let wall = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, w)| wall < *w) {
            best = Some((stats, wall));
        }
    }
    let (stats, wall) = best.expect("at least one rep");
    let cps = (point.warmup + point.measure) as f64 / wall;
    (stats, wall, cps)
}

/// Deterministic per-point digest for file-level kernel diffing
/// (everything in it must be bit-identical across kernels).
fn stats_digest(point: &GridPoint, stats: &NetworkStats) -> String {
    let hist = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
    let k = stats.total_gating_counters();
    format!(
        "{{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"rate\": {:.4}, \"policy\": \"{}\", \
         \"packets_injected\": {}, \"packets_delivered\": {}, \"flits_delivered\": {}, \
         \"dropped_at_source\": {}, \"latency_sum\": {}, \"latency_max\": {}, \
         \"idle_intervals\": {}, \"idle_cycles\": {}, \"sleep_entries\": {}, \
         \"wake_stalls\": {}, \"cycles_asleep\": {}}}",
        point.scheme.name(),
        point.mesh.0,
        point.mesh.1,
        point.rate,
        point.policy,
        stats.packets_injected,
        stats.packets_delivered,
        stats.flits_delivered,
        stats.packets_dropped_at_source,
        stats.latency_sum,
        stats.latency_max,
        hist.interval_count(),
        hist.total_idle_cycles(),
        k.sleep_entries,
        k.wake_stall_cycles,
        k.cycles_asleep,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let kernels: Vec<SimKernel> = match args
        .iter()
        .position(|a| a == "--kernel")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("both") => vec![SimKernel::ActiveSet, SimKernel::Reference],
        Some("active-set") => vec![SimKernel::ActiveSet],
        Some("reference") => vec![SimKernel::Reference],
        Some(other) => panic!("unknown --kernel {other} (active-set | reference | both)"),
    };
    let cfg = if smoke {
        CrossbarConfig {
            flit_bits: 32,
            sim_dt: 0.5e-12,
            ..CrossbarConfig::paper()
        }
    } else {
        CrossbarConfig::paper()
    };
    let schemes: &[Scheme] = if smoke {
        &[Scheme::Sc, Scheme::Dpc]
    } else {
        &Scheme::ALL
    };

    // Characterize each scheme once, in parallel.
    let ch = Characterizer::new(&cfg);
    let params: Vec<(Scheme, GatingParams)> = schemes
        .par_iter()
        .map(|&scheme| {
            let c = ch.characterize(scheme).expect("characterization");
            let model = lnoc_power::router::RouterPowerModel::from_characterization(&c, &cfg);
            (scheme, model.port_gating_params(cfg.radix))
        })
        .collect();

    // Build the grid. The threshold policies are scheme-specific (each
    // scheme has its own Minimum Idle Time). The 4×4 grid carries the
    // full scheme × policy matrix; the larger meshes probe the
    // low-rate regime where the active-set kernel matters most.
    let mut grid: Vec<GridPoint> = Vec::new();
    let push = |scheme: Scheme,
                p: GatingParams,
                mesh: (usize, usize),
                rate: f64,
                policy: GatingPolicy,
                warmup: u64,
                measure: u64,
                grid: &mut Vec<GridPoint>| {
        grid.push(GridPoint {
            scheme,
            params: p,
            mesh,
            rate,
            policy,
            warmup,
            measure,
        });
    };
    if smoke {
        for &(scheme, p) in &params {
            let mit = p.min_idle_cycles(cfg.clock);
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                push(scheme, p, (4, 4), 0.05, policy, 300, 2000, &mut grid);
            }
        }
        // One larger-mesh point keeps the active-set fast path under CI.
        let &(scheme, p) = params.last().expect("smoke characterizes two schemes");
        let mit = p.min_idle_cycles(cfg.clock);
        for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
            push(scheme, p, (16, 16), 0.02, policy, 200, 1500, &mut grid);
        }
    } else {
        for &(scheme, p) in &params {
            let mit = p.min_idle_cycles(cfg.clock);
            let policies = [
                GatingPolicy::Never,
                GatingPolicy::IdleThreshold(mit),
                GatingPolicy::Immediate,
                GatingPolicy::IdleThreshold(4 * mit.max(1)),
            ];
            for rate in [0.02, 0.05, 0.08] {
                for &policy in &policies {
                    push(scheme, p, (4, 4), rate, policy, 1000, 12000, &mut grid);
                }
            }
        }
        // Scaling points: low-rate large meshes — the ultra-low
        // utilization regime the paper's leakage argument (and the
        // active-set kernel) target.
        for &(scheme, p) in params
            .iter()
            .filter(|(s, _)| matches!(s, Scheme::Sc | Scheme::Dpc))
        {
            let mit = p.min_idle_cycles(cfg.clock);
            for rate in [0.0025, 0.005] {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(scheme, p, (16, 16), rate, policy, 1000, 12000, &mut grid);
                }
            }
        }
        for &(scheme, p) in params.iter().filter(|(s, _)| matches!(s, Scheme::Dpc)) {
            let mit = p.min_idle_cycles(cfg.clock);
            for rate in [0.0025, 0.005] {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(scheme, p, (32, 32), rate, policy, 500, 8000, &mut grid);
                }
            }
        }
    }
    eprintln!(
        "sweeping {} grid points × {} kernel(s), serially (timings stay clean)…",
        grid.len(),
        kernels.len()
    );

    // Run every grid point under every requested kernel — serially, so
    // wall times mean something. When both kernels run, assert their
    // statistics are bit-identical.
    // One untimed throwaway per distinct mesh size first: the first
    // simulation at each size otherwise pays page-fault/warm-up costs
    // that pollute its grid point's timing.
    let mut warmed: Vec<(usize, usize)> = Vec::new();
    for point in &grid {
        if !warmed.contains(&point.mesh) {
            warmed.push(point.mesh);
            for &kernel in &kernels {
                let _ = run_point(point, kernel, 1);
            }
        }
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut digests: Vec<(SimKernel, String)> = Vec::new();
    for (point_idx, point) in grid.iter().enumerate() {
        let mut first: Option<NetworkStats> = None;
        for &kernel in &kernels {
            let (stats, wall_s, cycles_per_sec) =
                run_point(point, kernel, if smoke { 1 } else { 2 });
            if let Some(prev) = &first {
                assert_eq!(
                    prev, &stats,
                    "kernel divergence at scheme {} mesh {:?} rate {} policy {}",
                    point.scheme, point.mesh, point.rate, point.policy
                );
            } else {
                first = Some(stats.clone());
            }
            digests.push((kernel, stats_digest(point, &stats)));
            rows.push(Row {
                point_idx,
                kernel,
                stats,
                wall_s,
                cycles_per_sec,
            });
        }
    }

    // Offline model evaluation once per grid point (the histograms are
    // kernel-independent — just asserted so).
    let outcomes: Vec<(GatingOutcome, GatingOutcome)> = grid
        .iter()
        .enumerate()
        .map(|(i, point)| {
            let stats = &rows
                .iter()
                .find(|r| r.point_idx == i)
                .expect("every point ran")
                .stats;
            let counters = stats.total_gating_counters();
            let in_loop = energy_from_counters(&counters, &point.params, cfg.clock);
            let offline = evaluate_policy(
                &stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS),
                &point.params,
                point.policy,
                cfg.clock,
            );
            (in_loop, offline)
        })
        .collect();

    // Baseline latency per (mesh, rate): the Never policy (identical
    // network behaviour for every scheme and kernel).
    let base_latency = |mesh: (usize, usize), rate: f64| -> f64 {
        rows.iter()
            .find(|r| {
                let p = &grid[r.point_idx];
                p.mesh == mesh && p.rate == rate && p.policy == GatingPolicy::Never
            })
            .map(|r| r.stats.avg_latency())
            .expect("grid always contains Never")
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 2,\n");
    let _ = writeln!(
        json,
        "  \"note\": \"in-loop sleep-FSM gating sweep, uniform traffic, grid points run serially \
         under every kernel; agreement = |in_loop - offline| / offline on the same run's \
         histograms; both kernels are asserted bit-identical before timing is reported\","
    );
    let _ = writeln!(
        json,
        "  \"kernels\": [{}],",
        kernels
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"results\": [\n");
    let n_rows = rows.len();
    let mut worst_disagreement: f64 = 0.0;
    for (i, r) in rows.iter().enumerate() {
        let point = &grid[r.point_idx];
        let (in_loop, offline) = &outcomes[r.point_idx];
        let penalty = r.stats.avg_latency() - base_latency(point.mesh, point.rate);
        let agreement = if offline.energy_policy.0 > 0.0 {
            (in_loop.energy_policy.0 - offline.energy_policy.0).abs() / offline.energy_policy.0
        } else {
            0.0
        };
        if point.policy != GatingPolicy::Never {
            worst_disagreement = worst_disagreement.max(agreement);
        }
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"rate\": {:.4}, \"policy\": \"{}\", \
             \"kernel\": \"{}\", \"mit_cycles\": {}, \"cycles\": {}, \"wall_s\": {:.4}, \
             \"cycles_per_sec\": {:.0}, \"avg_latency_cy\": {:.3}, \"latency_penalty_cy\": {:.3}, \
             \"throughput\": {:.4}, \"wake_stall_cycles\": {}, \"sleep_events\": {}, \
             \"dropped_at_source\": {}, \"energy_never_j\": {:.6e}, \"energy_policy_j\": {:.6e}, \
             \"saved_pct\": {:.2}, \"offline_energy_j\": {:.6e}, \"offline_saved_pct\": {:.2}, \
             \"agreement_pct\": {:.3}}}{}",
            point.scheme.name(),
            point.mesh.0,
            point.mesh.1,
            point.rate,
            point.policy,
            r.kernel.name(),
            point.params.min_idle_cycles(cfg.clock),
            point.warmup + point.measure,
            r.wall_s,
            r.cycles_per_sec,
            r.stats.avg_latency(),
            penalty,
            r.stats.throughput(),
            r.stats.wake_stall_cycles(),
            in_loop.sleep_events,
            r.stats.packets_dropped_at_source,
            in_loop.energy_never.0,
            in_loop.energy_policy.0,
            in_loop.savings_fraction() * 100.0,
            offline.energy_policy.0,
            offline.savings_fraction() * 100.0,
            agreement * 100.0,
            if i + 1 == n_rows { "" } else { "," }
        );
    }
    json.push_str("  ],\n");

    // Per-point kernel speedup (active-set cycle rate / reference cycle
    // rate) — the number the README performance table quotes.
    json.push_str("  \"speedup\": [\n");
    let mut speedups: Vec<String> = Vec::new();
    let mut min_16x16_low_rate: f64 = f64::INFINITY;
    if kernels.len() == 2 {
        for (i, point) in grid.iter().enumerate() {
            let cps = |kernel: SimKernel| {
                rows.iter()
                    .find(|r| r.point_idx == i && r.kernel == kernel)
                    .map(|r| r.cycles_per_sec)
                    .expect("both kernels ran")
            };
            let ratio = cps(SimKernel::ActiveSet) / cps(SimKernel::Reference);
            if point.mesh == (16, 16) && point.rate <= 0.02 {
                min_16x16_low_rate = min_16x16_low_rate.min(ratio);
            }
            speedups.push(format!(
                "    {{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"rate\": {:.4}, \
                 \"policy\": \"{}\", \"speedup\": {:.2}}}",
                point.scheme.name(),
                point.mesh.0,
                point.mesh.1,
                point.rate,
                point.policy,
                ratio
            ));
        }
    }
    json.push_str(&speedups.join(",\n"));
    json.push_str("\n  ]\n}\n");

    println!("{json}");
    println!(
        "worst in-loop vs offline disagreement (gated points): {:.3}%",
        worst_disagreement * 100.0
    );
    assert!(
        worst_disagreement < 0.05,
        "in-loop energy must agree with the offline model within 5%"
    );
    if min_16x16_low_rate.is_finite() {
        println!("minimum active-set speedup on 16x16, rate <= 0.02: {min_16x16_low_rate:.2}x");
    }

    // Stats digests for file-level kernel diffing in CI.
    for &kernel in &kernels {
        let body: Vec<&String> = digests
            .iter()
            .filter(|(k, _)| *k == kernel)
            .map(|(_, d)| d)
            .collect();
        let mut s = String::from("[\n");
        for (i, d) in body.iter().enumerate() {
            let _ = writeln!(s, "  {}{}", d, if i + 1 == body.len() { "" } else { "," });
        }
        s.push_str("]\n");
        lnoc_bench::write_artifact(&format!("x3_sweep_stats_{}.json", kernel.name()), &s);
    }

    if smoke {
        lnoc_bench::write_artifact("x3_gating_sweep_smoke.json", &json);
    } else {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_noc.json");
        std::fs::write(&path, &json).expect("write BENCH_noc.json");
        println!("wrote {}", path.display());
    }
}
