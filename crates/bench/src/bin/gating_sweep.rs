//! Experiment X3: in-loop gating sweep. Runs the mesh simulator with
//! the sleep FSM live in the cycle loop over a mesh-size ×
//! injection-rate × policy × scheme × VC-count grid and emits the
//! committed `BENCH_noc.json` baseline (schema 4): energy saved, the
//! latency/throughput penalty the offline model cannot see, the
//! in-loop vs offline agreement on every point — and, per grid point,
//! the wall time, cycle rate, tile geometry and speedup of **every
//! simulation kernel**, so both the active-set win over the dense
//! reference and the sharded win over the serial active-set are
//! tracked in-repo alongside the energy numbers.
//!
//! Gating runs at the simulator's native granularity, the output VC
//! lane: each point's `GatingParams` are
//! [`RouterPowerModel::vc_lane_gating_params`] — a `1/V` share of a
//! crossbar port plus the downstream input-VC buffer bank — so the VC
//! dimension directly measures how finer gating granularity moves the
//! energy/latency frontier. A saturated Tornado point on a wrapped
//! 16×16 with dateline VCs exercises deadlock-free torus operation
//! under the armed watchdog; the 64×64 and 128×128 rows are the scale
//! the tile-sharded kernel exists for (the dense reference kernel is
//! excluded from those rows — it would dominate the sweep's wall time
//! without adding information; the serial active-set kernel still runs
//! them at full length as the speedup baseline, and kernel equality is
//! asserted per point exactly as everywhere else).
//!
//! Grid points run serially (characterization is still parallel) so
//! the per-kernel timings are not distorted by core contention. When
//! several kernels run a point, their [`NetworkStats`] are asserted
//! bit-identical; single-kernel runs write a deterministic per-point
//! stats digest to `out/x3_sweep_stats_<kernel>.json` so CI can diff
//! the kernels as files.
//!
//! **Fault sweep** (schema 5): the full grid also carries a fault
//! dimension — deterministic [`FaultPlan`]s (fault count × injection
//! rate × gating policy, plus a dead-link saturated dateline-torus
//! point) — quantifying the leakage-savings story under graceful
//! degradation: dropped/unroutable packets, the reachable-pair floor
//! and post-fault latency land in the same rows and digests, and the
//! faulted points are asserted bit-identical across kernels exactly
//! like the healthy ones. Smoke grids opt in with `--faults` (CI runs
//! that per kernel and diffs the digests).
//!
//! ```sh
//! cargo run --release -p lnoc-bench --bin gating_sweep                  # full grid → BENCH_noc.json
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke       # CI smoke grid → out/
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke --faults --kernel sharded --shards 4
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --seed 7 --vcs 1,2 --shards 8 --threads 1
//! ```

use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_netsim::{
    FaultPlan, MeshConfig, NetworkStats, SimKernel, Simulation, SleepConfig, TrafficPattern,
};
use lnoc_power::gating::{
    energy_from_counters, evaluate_policy, GatingOutcome, GatingParams, GatingPolicy,
};
use lnoc_power::router::RouterPowerModel;
use rayon::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// Per-VC input buffer depth used by BOTH the simulated network
/// (`MeshConfig::buffer_depth`) and the leakage/gating-parameter model
/// (`with_buffer_geometry`) — one constant so the two can never
/// silently describe different buffer geometries.
const DEPTH_PER_VC: usize = 4;

/// One point of the sweep grid (kernel-independent).
struct GridPoint {
    scheme: Scheme,
    params: GatingParams,
    mesh: (usize, usize),
    rate: f64,
    pattern: TrafficPattern,
    wrap: bool,
    vcs: usize,
    policy: GatingPolicy,
    warmup: u64,
    measure: u64,
    /// Timing repetitions (big meshes run once; the rest best-of-2).
    reps: u32,
    /// Fault schedule for the fault-sweep dimension (`None` = healthy).
    faults: Option<FaultPlan>,
}

impl GridPoint {
    /// Whether the dense reference kernel is excluded from this point
    /// in the *full* sweep (meshes beyond the 32×32 route-table cap,
    /// where dense stepping would dominate the sweep's wall time).
    /// Smoke grids keep every kernel on every point so CI can diff all
    /// digest files row-for-row.
    fn too_big_for_reference(&self) -> bool {
        self.mesh.0 * self.mesh.1 > 1024
    }
}

/// One timed kernel execution of a grid point.
struct Row {
    point_idx: usize,
    kernel: SimKernel,
    stats: NetworkStats,
    wall_s: f64,
    cycles_per_sec: f64,
    /// Resolved tile count (1 for the serial kernels).
    shards: usize,
    /// Resolved worker threads (1 for the serial kernels).
    threads: usize,
}

fn mesh_cfg(
    point: &GridPoint,
    kernel: SimKernel,
    seed: u64,
    shards: usize,
    threads: usize,
) -> MeshConfig {
    MeshConfig {
        width: point.mesh.0,
        height: point.mesh.1,
        injection_rate: point.rate,
        pattern: point.pattern,
        wrap: point.wrap,
        vcs: point.vcs,
        packet_len_flits: 4,
        buffer_depth: DEPTH_PER_VC,
        seed,
        // Every policy (including Never) runs through the FSM so
        // counters are collected; Never simply never sleeps.
        gating: Some(SleepConfig {
            policy: point.policy,
            wake_latency: point.params.wake_latency_cycles,
        }),
        kernel,
        shards,
        threads,
        faults: point.faults.clone(),
        ..MeshConfig::default()
    }
}

fn run_point(
    point: &GridPoint,
    kernel: SimKernel,
    seed: u64,
    shards: usize,
    threads: usize,
    reps: u32,
) -> Row {
    // Construction (including the active-set kernel's route-table
    // build) stays outside the timer: cycle rate measures the loop.
    // Best-of-`reps` wall time — the repeats are identical simulations,
    // so the minimum is the least-noise estimate.
    let mut best: Option<(NetworkStats, f64, usize, usize)> = None;
    for _ in 0..reps.max(1) {
        let mut sim = Simulation::new(mesh_cfg(point, kernel, seed, shards, threads));
        let geometry = (sim.shards(), sim.threads());
        let start = Instant::now();
        let stats = sim.run(point.warmup, point.measure);
        let wall = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, w, _, _)| wall < *w) {
            best = Some((stats, wall, geometry.0, geometry.1));
        }
    }
    let (stats, wall_s, shards, threads) = best.expect("at least one rep");
    let cycles_per_sec = (point.warmup + point.measure) as f64 / wall_s;
    Row {
        point_idx: usize::MAX, // filled by the caller
        kernel,
        stats,
        wall_s,
        cycles_per_sec,
        shards,
        threads,
    }
}

/// Deterministic per-point digest for file-level kernel diffing
/// (everything in it must be bit-identical across kernels).
fn stats_digest(point: &GridPoint, seed: u64, stats: &NetworkStats) -> String {
    let hist = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
    let k = stats.total_gating_counters();
    let faults = point
        .faults
        .as_ref()
        .map(|f| f.link_faults + f.router_faults + f.transient_link_faults)
        .unwrap_or(0);
    format!(
        "{{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"pattern\": \"{}\", \"wrap\": {}, \
         \"vcs\": {}, \"seed\": {}, \"rate\": {:.4}, \"policy\": \"{}\", \"faults\": {}, \
         \"packets_injected\": {}, \"packets_delivered\": {}, \"flits_delivered\": {}, \
         \"dropped_at_source\": {}, \"latency_sum\": {}, \"latency_max\": {}, \
         \"idle_intervals\": {}, \"idle_cycles\": {}, \"sleep_entries\": {}, \
         \"wake_stalls\": {}, \"cycles_asleep\": {}, \"dropped_by_fault\": {}, \
         \"packets_unroutable\": {}, \"delivered_post_fault\": {}, \
         \"latency_sum_post_fault\": {}}}",
        point.scheme.name(),
        point.mesh.0,
        point.mesh.1,
        point.pattern.name(),
        point.wrap,
        point.vcs,
        seed,
        point.rate,
        point.policy,
        faults,
        stats.packets_injected,
        stats.packets_delivered,
        stats.flits_delivered,
        stats.packets_dropped_at_source,
        stats.latency_sum,
        stats.latency_max,
        hist.interval_count(),
        hist.total_idle_cycles(),
        k.sleep_entries,
        k.wake_stall_cycles,
        k.cycles_asleep,
        stats.flits_dropped_by_fault,
        stats.packets_unroutable,
        stats.packets_delivered_post_fault,
        stats.latency_sum_post_fault,
    )
}

/// Parses `--flag value` style arguments.
fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // The full sweep always carries the fault grid (the committed
    // baseline quantifies graceful degradation); smoke grids opt in
    // with `--faults` so the plain CI smoke run stays minimal.
    let with_faults = !smoke || args.iter().any(|a| a == "--faults");
    let kernels: Vec<SimKernel> = match arg_value(&args, "--kernel") {
        None | Some("all") => vec![
            SimKernel::ActiveSet,
            SimKernel::Reference,
            SimKernel::Sharded,
        ],
        Some("both") => vec![SimKernel::ActiveSet, SimKernel::Reference],
        Some("active-set") => vec![SimKernel::ActiveSet],
        Some("reference") => vec![SimKernel::Reference],
        Some("sharded") => vec![SimKernel::Sharded],
        Some(other) => {
            panic!("unknown --kernel {other} (active-set | reference | sharded | both | all)")
        }
    };
    let seed: u64 = arg_value(&args, "--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(2005);
    // Tile geometry for the sharded kernel. `--shards 0` (the default)
    // lets the simulator pick one tile per core; the committed
    // baseline pins 8 so the recorded geometry does not depend on the
    // host. Thread count never changes results — only wall time.
    let shards: usize = arg_value(&args, "--shards")
        .map(|s| s.parse().expect("--shards takes an integer"))
        .unwrap_or(8);
    let threads: usize = arg_value(&args, "--threads")
        .map(|s| s.parse().expect("--threads takes an integer"))
        .unwrap_or(0);
    let vc_list: Vec<usize> = arg_value(&args, "--vcs")
        .map(|s| {
            s.split(',')
                .map(|v| v.trim().parse().expect("--vcs takes e.g. 1,2,4"))
                .collect()
        })
        .unwrap_or_else(|| if smoke { vec![1, 2] } else { vec![1, 2, 4] });
    let cfg = if smoke {
        CrossbarConfig {
            flit_bits: 32,
            sim_dt: 0.5e-12,
            ..CrossbarConfig::paper()
        }
    } else {
        CrossbarConfig::paper()
    };
    let schemes: &[Scheme] = if smoke {
        &[Scheme::Sc, Scheme::Dpc]
    } else {
        &Scheme::ALL
    };

    // Characterize each scheme once, in parallel; derive per-VC-lane
    // gating parameters for every requested VC count (the buffer
    // geometry — and with it the gateable leakage — scales with V).
    let ch = Characterizer::new(&cfg);
    let models: Vec<(Scheme, RouterPowerModel)> = schemes
        .par_iter()
        .map(|&scheme| {
            let c = ch.characterize(scheme).expect("characterization");
            (scheme, RouterPowerModel::from_characterization(&c, &cfg))
        })
        .collect();
    let lane_params = |scheme: Scheme, vcs: usize| -> GatingParams {
        let model = &models
            .iter()
            .find(|(s, _)| *s == scheme)
            .expect("characterized")
            .1;
        model
            .clone()
            .with_buffer_geometry(vcs, DEPTH_PER_VC)
            .vc_lane_gating_params(cfg.radix, vcs)
    };

    // Build the grid. The threshold policies are scheme- and
    // VC-specific (each scheme × granularity has its own Minimum Idle
    // Time). The 4×4 grid carries the full scheme × policy matrix at
    // V = 1; the VC dimension re-runs the interesting schemes across
    // granularities; the larger meshes probe the low-rate regime where
    // the fast kernels matter most; the wrapped Tornado point
    // exercises dateline deadlock freedom at saturation; the 32×32
    // medium-rate, 64×64 and 128×128 rows are the sharded kernel's
    // scaling showcase.
    let mut grid: Vec<GridPoint> = Vec::new();
    let mut push = |scheme: Scheme,
                    mesh: (usize, usize),
                    rate: f64,
                    pattern: TrafficPattern,
                    wrap: bool,
                    vcs: usize,
                    policy: GatingPolicy,
                    warmup: u64,
                    measure: u64,
                    reps: u32| {
        grid.push(GridPoint {
            scheme,
            params: lane_params(scheme, vcs),
            mesh,
            rate,
            pattern,
            wrap,
            vcs,
            policy,
            warmup,
            measure,
            reps,
            faults: None,
        });
    };
    let uniform = TrafficPattern::UniformRandom;
    let mit_of = |scheme: Scheme, vcs: usize| lane_params(scheme, vcs).min_idle_cycles(cfg.clock);
    if smoke {
        for &scheme in schemes {
            for &vcs in &vc_list {
                let mit = mit_of(scheme, vcs);
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        (4, 4),
                        0.05,
                        uniform,
                        false,
                        vcs,
                        policy,
                        300,
                        2000,
                        1,
                    );
                }
            }
        }
        // One larger-mesh point keeps the active-set fast path under
        // CI, a short 64×64 point keeps the sharded tile/mailbox path
        // (and its digest) alive under every kernel, and one saturated
        // dateline-torus point keeps the deadlock-freedom path alive
        // (needs vcs >= 2).
        let scheme = *schemes.last().expect("smoke characterizes two schemes");
        let mit = mit_of(scheme, 1);
        for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
            push(
                scheme,
                (16, 16),
                0.02,
                uniform,
                false,
                1,
                policy,
                200,
                1500,
                1,
            );
        }
        for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
            push(
                scheme,
                (64, 64),
                0.005,
                uniform,
                false,
                1,
                policy,
                100,
                600,
                1,
            );
        }
        if let Some(&vcs) = vc_list.iter().find(|&&v| v >= 2) {
            let mit = mit_of(scheme, vcs);
            push(
                scheme,
                (8, 8),
                1.0,
                TrafficPattern::Tornado,
                true,
                vcs,
                GatingPolicy::IdleThreshold(mit),
                200,
                1500,
                1,
            );
            push(
                scheme,
                (8, 8),
                1.0,
                TrafficPattern::Tornado,
                true,
                vcs,
                GatingPolicy::Never,
                200,
                1500,
                1,
            );
        }
    } else {
        // Scheme × rate × policy matrix at the V = 1 baseline
        // granularity.
        for &scheme in schemes {
            let mit = mit_of(scheme, 1);
            let policies = [
                GatingPolicy::Never,
                GatingPolicy::IdleThreshold(mit),
                GatingPolicy::Immediate,
                GatingPolicy::IdleThreshold(4 * mit.max(1)),
            ];
            for rate in [0.02, 0.05, 0.08] {
                for &policy in &policies {
                    push(
                        scheme,
                        (4, 4),
                        rate,
                        uniform,
                        false,
                        1,
                        policy,
                        1000,
                        12000,
                        2,
                    );
                }
            }
        }
        // VC-granularity dimension: how finer per-VC gating moves the
        // energy/latency frontier, for the baseline and the
        // best-gating scheme. vcs = 1 is skipped here — the baseline
        // matrix above already carries those exact points (same rate,
        // same policies), and duplicating them would both waste two
        // 13k-cycle runs per kernel and double-count rows in any
        // aggregation over the committed JSON.
        for &scheme in schemes
            .iter()
            .filter(|s| matches!(s, Scheme::Sc | Scheme::Dpc))
        {
            for &vcs in vc_list.iter().filter(|&&v| v > 1) {
                let mit = mit_of(scheme, vcs);
                for policy in [
                    GatingPolicy::Never,
                    GatingPolicy::IdleThreshold(mit),
                    GatingPolicy::Immediate,
                ] {
                    push(
                        scheme,
                        (4, 4),
                        0.05,
                        uniform,
                        false,
                        vcs,
                        policy,
                        1000,
                        12000,
                        2,
                    );
                }
            }
        }
        // Scaling points: low-rate large meshes — the ultra-low
        // utilization regime the paper's leakage argument (and the
        // fast kernels) target.
        for &scheme in schemes
            .iter()
            .filter(|s| matches!(s, Scheme::Sc | Scheme::Dpc))
        {
            let mit = mit_of(scheme, 1);
            for rate in [0.0025, 0.005] {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        (16, 16),
                        rate,
                        uniform,
                        false,
                        1,
                        policy,
                        1000,
                        12000,
                        2,
                    );
                }
            }
        }
        for &scheme in schemes.iter().filter(|s| matches!(s, Scheme::Dpc)) {
            let mit = mit_of(scheme, 1);
            for rate in [0.0025, 0.005] {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        (32, 32),
                        rate,
                        uniform,
                        false,
                        1,
                        policy,
                        500,
                        8000,
                        2,
                    );
                }
            }
            // The sharded-kernel acceptance row: 32×32 at medium rate,
            // where the active set is large and the serial kernels
            // have no quiescence to skip.
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                push(
                    scheme,
                    (32, 32),
                    0.05,
                    uniform,
                    false,
                    1,
                    policy,
                    500,
                    6000,
                    2,
                );
            }
            // The scales the sharded kernel exists for. The reference
            // kernel is excluded (too_big_for_reference); the serial
            // active-set kernel runs full length as the speedup
            // baseline.
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                push(
                    scheme,
                    (64, 64),
                    0.005,
                    uniform,
                    false,
                    1,
                    policy,
                    500,
                    4000,
                    1,
                );
            }
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                push(
                    scheme,
                    (128, 128),
                    0.0025,
                    uniform,
                    false,
                    1,
                    policy,
                    200,
                    1500,
                    1,
                );
            }
        }
        // Deadlock-free saturated torus: Tornado at full offered load
        // on a wrapped 16×16 with dateline VCs, watchdog armed (the
        // default). Per-VC gating numbers under heavy, structured
        // traffic.
        if let Some(&vcs) = vc_list.iter().find(|&&v| v >= 2) {
            for &scheme in schemes.iter().filter(|s| matches!(s, Scheme::Dpc)) {
                let mit = mit_of(scheme, vcs);
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        (16, 16),
                        1.0,
                        TrafficPattern::Tornado,
                        true,
                        vcs,
                        policy,
                        500,
                        6000,
                        2,
                    );
                }
            }
        }
    }
    // Fault-sweep dimension (schema 5): deterministic fault plans —
    // fault count × injection rate × gating policy, each with its own
    // Never row as the faulted latency baseline, plus a dead-link
    // saturated dateline torus. Plan seeds derive from the sweep seed
    // so `--seed` reproduces the whole scenario, kills included, and
    // every faulted point is asserted bit-identical across kernels
    // exactly like the healthy ones.
    if with_faults {
        let scheme = Scheme::Dpc;
        let (mesh, warmup, measure, reps) = if smoke {
            ((8, 8), 100u64, 1500u64, 1u32)
        } else {
            ((16, 16), 500, 8000, 2)
        };
        let mit = mit_of(scheme, 1);
        // (permanent link, router, transient link) fault counts.
        let plans: &[(usize, usize, usize)] = if smoke {
            &[(1, 0, 0), (2, 1, 1)]
        } else {
            &[(1, 0, 0), (2, 0, 1), (2, 1, 2)]
        };
        let rates: &[f64] = if smoke { &[0.05] } else { &[0.02, 0.05] };
        for (i, &(links, routers, transients)) in plans.iter().enumerate() {
            let plan = FaultPlan {
                seed: seed ^ (0xFA17 + i as u64),
                link_faults: links,
                router_faults: routers,
                transient_link_faults: transients,
                transient_duration: measure / 4,
                start_cycle: warmup,
                window: measure / 2,
                ..FaultPlan::default()
            };
            for &rate in rates {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    grid.push(GridPoint {
                        scheme,
                        params: lane_params(scheme, 1),
                        mesh,
                        rate,
                        pattern: uniform,
                        wrap: false,
                        vcs: 1,
                        policy,
                        warmup,
                        measure,
                        reps,
                        faults: Some(plan.clone()),
                    });
                }
            }
        }
        // Graceful degradation at saturation: the dateline torus loses
        // one link mid-measurement and must keep streaming around the
        // detour without tripping the watchdog.
        if let Some(&vcs) = vc_list.iter().find(|&&v| v >= 2) {
            let mit = mit_of(scheme, vcs);
            let plan = FaultPlan {
                seed: seed ^ 0xDEAD,
                link_faults: 1,
                router_faults: 0,
                transient_link_faults: 0,
                start_cycle: warmup + measure / 3,
                window: 1,
                ..FaultPlan::default()
            };
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                grid.push(GridPoint {
                    scheme,
                    params: lane_params(scheme, vcs),
                    mesh,
                    rate: 1.0,
                    pattern: TrafficPattern::Tornado,
                    wrap: true,
                    vcs,
                    policy,
                    warmup,
                    measure,
                    reps,
                    faults: Some(plan.clone()),
                });
            }
        }
    }
    let threads_available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    eprintln!(
        "sweeping {} grid points × up to {} kernel(s), seed {seed}, vcs {:?}, \
         shards {shards}, threads {} (host cores: {threads_available}), serially (timings stay clean)…",
        grid.len(),
        kernels.len(),
        vc_list,
        if threads == 0 { "auto".to_string() } else { threads.to_string() },
    );

    // Which kernels run a given point: the full sweep excludes the
    // dense reference from the big meshes; smoke grids keep every
    // kernel everywhere so the per-kernel digest files stay
    // row-aligned for CI's diff.
    let kernels_for = |point: &GridPoint| -> Vec<SimKernel> {
        kernels
            .iter()
            .copied()
            .filter(|&k| smoke || k != SimKernel::Reference || !point.too_big_for_reference())
            .collect()
    };

    // Run every grid point under every requested kernel — serially, so
    // wall times mean something. When several kernels run, assert
    // their statistics are bit-identical.
    // One untimed throwaway per distinct mesh size first: the first
    // simulation at each size otherwise pays page-fault/warm-up costs
    // that pollute its grid point's timing.
    let mut warmed: Vec<(usize, usize)> = Vec::new();
    for point in &grid {
        if !warmed.contains(&point.mesh) {
            warmed.push(point.mesh);
            for &kernel in &kernels_for(point) {
                let _ = run_point(point, kernel, seed, shards, threads, 1);
            }
        }
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut digests: Vec<(SimKernel, String)> = Vec::new();
    for (point_idx, point) in grid.iter().enumerate() {
        let mut first: Option<NetworkStats> = None;
        for &kernel in &kernels_for(point) {
            let mut row = run_point(point, kernel, seed, shards, threads, point.reps);
            row.point_idx = point_idx;
            if let Some(prev) = &first {
                assert_eq!(
                    prev, &row.stats,
                    "kernel divergence at scheme {} mesh {:?} rate {} vcs {} policy {}",
                    point.scheme, point.mesh, point.rate, point.vcs, point.policy
                );
            } else {
                first = Some(row.stats.clone());
            }
            digests.push((kernel, stats_digest(point, seed, &row.stats)));
            rows.push(row);
        }
    }

    // Offline model evaluation once per grid point (the histograms are
    // kernel-independent — just asserted so).
    let outcomes: Vec<(GatingOutcome, GatingOutcome)> = grid
        .iter()
        .enumerate()
        .map(|(i, point)| {
            let stats = &rows
                .iter()
                .find(|r| r.point_idx == i)
                .expect("every point ran")
                .stats;
            let counters = stats.total_gating_counters();
            let in_loop = energy_from_counters(&counters, &point.params, cfg.clock);
            let offline = evaluate_policy(
                &stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS),
                &point.params,
                point.policy,
                cfg.clock,
            );
            (in_loop, offline)
        })
        .collect();

    // Baseline latency per (mesh, rate, pattern, wrap, vcs, faults):
    // the Never policy (identical network behaviour for every scheme
    // and kernel). Faulted points compare against their own faulted
    // Never baseline, so the penalty isolates gating from degradation.
    let base_latency = |p: &GridPoint| -> f64 {
        rows.iter()
            .find(|r| {
                let b = &grid[r.point_idx];
                b.mesh == p.mesh
                    && b.rate == p.rate
                    && b.pattern == p.pattern
                    && b.wrap == p.wrap
                    && b.vcs == p.vcs
                    && b.faults == p.faults
                    && b.policy == GatingPolicy::Never
            })
            .map(|r| r.stats.avg_latency())
            .expect("grid always contains Never for each traffic point")
    };
    // Cycle rate of a given kernel on a given point, if it ran.
    let cps_of = |point_idx: usize, kernel: SimKernel| -> Option<f64> {
        rows.iter()
            .find(|r| r.point_idx == point_idx && r.kernel == kernel)
            .map(|r| r.cycles_per_sec)
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 5,\n");
    let _ = writeln!(
        json,
        "  \"note\": \"in-loop per-VC-lane sleep-FSM gating sweep; gating params are one output \
         VC lane (1/V crossbar port share + downstream input-VC buffer bank); grid points run \
         serially under every kernel; agreement = |in_loop - offline| / offline on the same \
         run's histograms; all kernels that run a point are asserted bit-identical before \
         timing is reported; speedup_vs_active_set = cycle rate of the row's kernel over the \
         serial active-set kernel on the same point (the sharded rows' tile geometry is in \
         shards/threads; threads_available records the host's cores — on a single-core host \
         the sharded speedup measures tile cache locality only, not parallel scaling); the \
         wrapped tornado points run dateline VCs at saturation under the armed watchdog; the \
         64x64/128x128 rows exclude the dense reference kernel; faults > 0 rows run a seeded \
         FaultPlan (permanent + transient link/router kills) with fault-aware rerouting — \
         their latency penalty is against their own faulted Never baseline, and \
         min_reachable_pct / dropped_by_fault / packets_unroutable / avg_latency_post_fault \
         quantify graceful degradation\","
    );
    let _ = writeln!(
        json,
        "  \"kernels\": [{}],",
        kernels
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"threads_available\": {threads_available},");
    let _ = writeln!(
        json,
        "  \"vc_counts\": [{}],",
        vc_list
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"results\": [\n");
    let n_rows = rows.len();
    let mut worst_disagreement: f64 = 0.0;
    for (i, r) in rows.iter().enumerate() {
        let point = &grid[r.point_idx];
        let (in_loop, offline) = &outcomes[r.point_idx];
        let penalty = r.stats.avg_latency() - base_latency(point);
        let agreement = if offline.energy_policy.0 > 0.0 {
            (in_loop.energy_policy.0 - offline.energy_policy.0).abs() / offline.energy_policy.0
        } else {
            0.0
        };
        if point.policy != GatingPolicy::Never {
            worst_disagreement = worst_disagreement.max(agreement);
        }
        let speedup_vs_active = cps_of(r.point_idx, SimKernel::ActiveSet)
            .map(|base| r.cycles_per_sec / base)
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "null".to_string());
        let fault_count = point
            .faults
            .as_ref()
            .map(|f| f.link_faults + f.router_faults + f.transient_link_faults)
            .unwrap_or(0);
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"pattern\": \"{}\", \"wrap\": {}, \
             \"vcs\": {}, \"seed\": {}, \"rate\": {:.4}, \"policy\": \"{}\", \
             \"kernel\": \"{}\", \"shards\": {}, \"threads\": {}, \
             \"speedup_vs_active_set\": {}, \"mit_cycles\": {}, \"cycles\": {}, \
             \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}, \"avg_latency_cy\": {:.3}, \
             \"latency_penalty_cy\": {:.3}, \"throughput\": {:.4}, \"wake_stall_cycles\": {}, \
             \"sleep_events\": {}, \"dropped_at_source\": {}, \"energy_never_j\": {:.6e}, \
             \"energy_policy_j\": {:.6e}, \"saved_pct\": {:.2}, \"offline_energy_j\": {:.6e}, \
             \"offline_saved_pct\": {:.2}, \"agreement_pct\": {:.3}, \"faults\": {}, \
             \"dropped_by_fault\": {}, \"packets_unroutable\": {}, \
             \"min_reachable_pct\": {:.2}, \"avg_latency_post_fault\": {:.3}}}{}",
            point.scheme.name(),
            point.mesh.0,
            point.mesh.1,
            point.pattern.name(),
            point.wrap,
            point.vcs,
            seed,
            point.rate,
            point.policy,
            r.kernel.name(),
            r.shards,
            r.threads,
            speedup_vs_active,
            point.params.min_idle_cycles(cfg.clock),
            point.warmup + point.measure,
            r.wall_s,
            r.cycles_per_sec,
            r.stats.avg_latency(),
            penalty,
            r.stats.throughput(),
            r.stats.wake_stall_cycles(),
            in_loop.sleep_events,
            r.stats.packets_dropped_at_source,
            in_loop.energy_never.0,
            in_loop.energy_policy.0,
            in_loop.savings_fraction() * 100.0,
            offline.energy_policy.0,
            offline.savings_fraction() * 100.0,
            agreement * 100.0,
            fault_count,
            r.stats.flits_dropped_by_fault,
            r.stats.packets_unroutable,
            r.stats.min_reachable_fraction * 100.0,
            r.stats.avg_latency_post_fault(),
            if i + 1 == n_rows { "" } else { "," }
        );
    }
    json.push_str("  ],\n");

    // Per-point kernel speedups: active-set over reference (the PR 3
    // baseline) and sharded over active-set (the tiling win) — the
    // numbers the README performance table quotes.
    json.push_str("  \"speedup\": [\n");
    let mut speedups: Vec<String> = Vec::new();
    let mut min_16x16_low_rate: f64 = f64::INFINITY;
    let mut min_sharded_32x32_medium: f64 = f64::INFINITY;
    for (i, point) in grid.iter().enumerate() {
        let active = cps_of(i, SimKernel::ActiveSet);
        let reference = cps_of(i, SimKernel::Reference);
        let sharded = cps_of(i, SimKernel::Sharded);
        let (Some(active), reference, sharded) = (active, reference, sharded) else {
            continue;
        };
        let vs_ref = reference.map(|r| active / r);
        let sharded_vs_active = sharded.map(|s| s / active);
        if let Some(r) = vs_ref {
            if point.mesh == (16, 16) && point.rate <= 0.02 {
                min_16x16_low_rate = min_16x16_low_rate.min(r);
            }
        }
        if let Some(s) = sharded_vs_active {
            if point.mesh == (32, 32) && point.rate >= 0.05 {
                min_sharded_32x32_medium = min_sharded_32x32_medium.min(s);
            }
        }
        let fmt_opt = |v: Option<f64>| {
            v.map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "null".into())
        };
        speedups.push(format!(
            "    {{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"pattern\": \"{}\", \
             \"vcs\": {}, \"rate\": {:.4}, \"policy\": \"{}\", \
             \"active_set_vs_reference\": {}, \"sharded_vs_active_set\": {}}}",
            point.scheme.name(),
            point.mesh.0,
            point.mesh.1,
            point.pattern.name(),
            point.vcs,
            point.rate,
            point.policy,
            fmt_opt(vs_ref),
            fmt_opt(sharded_vs_active),
        ));
    }
    json.push_str(&speedups.join(",\n"));
    json.push_str("\n  ]\n}\n");

    println!("{json}");
    println!(
        "worst in-loop vs offline disagreement (gated points): {:.3}%",
        worst_disagreement * 100.0
    );
    assert!(
        worst_disagreement < 0.05,
        "in-loop energy must agree with the offline model within 5%"
    );
    if min_16x16_low_rate.is_finite() {
        println!("minimum active-set speedup on 16x16, rate <= 0.02: {min_16x16_low_rate:.2}x");
    }
    if min_sharded_32x32_medium.is_finite() {
        println!(
            "minimum sharded speedup vs active-set on 32x32, rate >= 0.05 \
             (threads_available = {threads_available}): {min_sharded_32x32_medium:.2}x"
        );
    }

    // Stats digests for file-level kernel diffing in CI.
    for &kernel in &kernels {
        let body: Vec<&String> = digests
            .iter()
            .filter(|(k, _)| *k == kernel)
            .map(|(_, d)| d)
            .collect();
        let mut s = String::from("[\n");
        for (i, d) in body.iter().enumerate() {
            let _ = writeln!(s, "  {}{}", d, if i + 1 == body.len() { "" } else { "," });
        }
        s.push_str("]\n");
        lnoc_bench::write_artifact(&format!("x3_sweep_stats_{}.json", kernel.name()), &s);
    }

    if smoke {
        lnoc_bench::write_artifact("x3_gating_sweep_smoke.json", &json);
    } else {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_noc.json");
        std::fs::write(&path, &json).expect("write BENCH_noc.json");
        println!("wrote {}", path.display());
    }
}
