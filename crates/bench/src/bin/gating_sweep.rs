//! Experiment X3: in-loop gating sweep. Runs the mesh simulator with
//! the sleep FSM live in the cycle loop over an injection-rate × policy
//! × scheme grid — in parallel with rayon, one simulation per grid
//! point — and emits the committed `BENCH_noc.json` baseline: energy
//! saved, the latency/throughput penalty the offline model cannot see,
//! and the in-loop vs offline agreement on every point.
//!
//! ```sh
//! cargo run --release -p lnoc-bench --bin gating_sweep            # full grid → BENCH_noc.json
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke # CI smoke grid → out/
//! ```

use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_netsim::{MeshConfig, NetworkStats, Simulation, SleepConfig, TrafficPattern};
use lnoc_power::gating::{
    energy_from_counters, evaluate_policy, GatingOutcome, GatingParams, GatingPolicy,
};
use rayon::prelude::*;
use std::fmt::Write as _;

/// One measured grid point.
struct Row {
    scheme: Scheme,
    rate: f64,
    policy: GatingPolicy,
    mit: u32,
    stats: NetworkStats,
    in_loop: GatingOutcome,
    offline: GatingOutcome,
}

fn mesh_cfg(rate: f64, gating: Option<SleepConfig>, measure_seed: u64) -> MeshConfig {
    MeshConfig {
        width: 4,
        height: 4,
        injection_rate: rate,
        pattern: TrafficPattern::UniformRandom,
        packet_len_flits: 4,
        buffer_depth: 4,
        seed: measure_seed,
        gating,
        ..MeshConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        CrossbarConfig {
            flit_bits: 32,
            sim_dt: 0.5e-12,
            ..CrossbarConfig::paper()
        }
    } else {
        CrossbarConfig::paper()
    };
    let (warmup, measure) = if smoke { (300, 2000) } else { (1000, 12000) };
    let schemes: &[Scheme] = if smoke {
        &[Scheme::Sc, Scheme::Dpc]
    } else {
        &Scheme::ALL
    };
    let rates: &[f64] = if smoke { &[0.05] } else { &[0.02, 0.05, 0.08] };

    // Characterize each scheme once, in parallel.
    let ch = Characterizer::new(&cfg);
    let params: Vec<(Scheme, GatingParams)> = schemes
        .par_iter()
        .map(|&scheme| {
            let c = ch.characterize(scheme).expect("characterization");
            let model = lnoc_power::router::RouterPowerModel::from_characterization(&c, &cfg);
            (scheme, model.port_gating_params(cfg.radix))
        })
        .collect();

    // Build the grid: scheme × rate × policy. The threshold policies
    // are scheme-specific (each scheme has its own Minimum Idle Time).
    let mut grid: Vec<(Scheme, GatingParams, f64, GatingPolicy)> = Vec::new();
    for &(scheme, p) in &params {
        let mit = p.min_idle_cycles(cfg.clock);
        let mut policies = vec![GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)];
        if !smoke {
            policies.push(GatingPolicy::Immediate);
            policies.push(GatingPolicy::IdleThreshold(4 * mit.max(1)));
        }
        for &rate in rates {
            for &policy in &policies {
                grid.push((scheme, p, rate, policy));
            }
        }
    }
    eprintln!(
        "sweeping {} grid points on {} threads…",
        grid.len(),
        rayon::current_num_threads()
    );

    // One full in-loop simulation per grid point, in parallel.
    let rows: Vec<Row> = grid
        .into_par_iter()
        .map(|(scheme, p, rate, policy)| {
            let mit = p.min_idle_cycles(cfg.clock);
            // Every policy (including Never) runs through the FSM so
            // counters are collected; Never simply never sleeps.
            let gating = Some(SleepConfig {
                policy,
                wake_latency: p.wake_latency_cycles,
            });
            let mut sim = Simulation::new(mesh_cfg(rate, gating, 2005));
            let stats = sim.run(warmup, measure);
            let counters = stats.total_gating_counters();
            let in_loop = energy_from_counters(&counters, &p, cfg.clock);
            let offline =
                evaluate_policy(&stats.merged_idle_histogram(4096), &p, policy, cfg.clock);
            Row {
                scheme,
                rate,
                policy,
                mit,
                stats,
                in_loop,
                offline,
            }
        })
        .collect();

    // Baseline latency per injection rate (Never policy; identical
    // network behaviour for every scheme).
    let base_latency = |rate: f64| -> f64 {
        rows.iter()
            .find(|r| r.rate == rate && r.policy == GatingPolicy::Never)
            .map(|r| r.stats.avg_latency())
            .expect("grid always contains Never")
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n");
    let _ = writeln!(
        json,
        "  \"note\": \"in-loop sleep-FSM gating sweep, 4x4 mesh, uniform traffic, {measure} measured cycles; agreement = |in_loop - offline| / offline on the same run's histograms\","
    );
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"results\": [\n");
    let n_rows = rows.len();
    let mut worst_disagreement: f64 = 0.0;
    for (i, r) in rows.iter().enumerate() {
        let penalty = r.stats.avg_latency() - base_latency(r.rate);
        let agreement = if r.offline.energy_policy.0 > 0.0 {
            (r.in_loop.energy_policy.0 - r.offline.energy_policy.0).abs()
                / r.offline.energy_policy.0
        } else {
            0.0
        };
        if r.policy != GatingPolicy::Never {
            worst_disagreement = worst_disagreement.max(agreement);
        }
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{}\", \"rate\": {:.2}, \"policy\": \"{}\", \"mit_cycles\": {}, \
             \"avg_latency_cy\": {:.3}, \"latency_penalty_cy\": {:.3}, \"throughput\": {:.4}, \
             \"wake_stall_cycles\": {}, \"sleep_events\": {}, \
             \"energy_never_j\": {:.6e}, \"energy_policy_j\": {:.6e}, \"saved_pct\": {:.2}, \
             \"offline_energy_j\": {:.6e}, \"offline_saved_pct\": {:.2}, \"agreement_pct\": {:.3}}}{}",
            r.scheme.name(),
            r.rate,
            r.policy,
            r.mit,
            r.stats.avg_latency(),
            penalty,
            r.stats.throughput(),
            r.stats.wake_stall_cycles(),
            r.in_loop.sleep_events,
            r.in_loop.energy_never.0,
            r.in_loop.energy_policy.0,
            r.in_loop.savings_fraction() * 100.0,
            r.offline.energy_policy.0,
            r.offline.savings_fraction() * 100.0,
            agreement * 100.0,
            if i + 1 == n_rows { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    println!("{json}");
    println!(
        "worst in-loop vs offline disagreement (gated points): {:.3}%",
        worst_disagreement * 100.0
    );
    assert!(
        worst_disagreement < 0.05,
        "in-loop energy must agree with the offline model within 5%"
    );

    if smoke {
        lnoc_bench::write_artifact("x3_gating_sweep_smoke.json", &json);
    } else {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_noc.json");
        std::fs::write(&path, &json).expect("write BENCH_noc.json");
        println!("wrote {}", path.display());
    }
}
