//! Experiment X3: in-loop gating sweep. Runs the mesh simulator with
//! the sleep FSM live in the cycle loop over a mesh-size ×
//! injection-rate × policy × scheme × VC-count grid and emits the
//! committed `BENCH_noc.json` baseline (schema 8): energy saved, the
//! latency/throughput penalty the offline model cannot see, the
//! in-loop vs offline agreement on every point — and, per grid point,
//! the wall time, cycle rate, tile geometry and speedup of **every
//! simulation kernel**, so the active-set win over the dense
//! reference, the sharded win over the serial active-set, and the
//! event-driven kernel's leap win at low rate are all tracked in-repo
//! alongside the energy numbers. Event-kernel rows additionally carry
//! `cycles_leapt` / `events_processed` / `leap_fraction` — how much of
//! the run the time wheel let the clock skip.
//!
//! Gating runs at the simulator's native granularity, the output VC
//! lane: each point's `GatingParams` are
//! [`RouterPowerModel::vc_lane_gating_params`] — a `1/V` share of a
//! crossbar port plus the downstream input-VC buffer bank — so the VC
//! dimension directly measures how finer gating granularity moves the
//! energy/latency frontier. A saturated Tornado point on a wrapped
//! 16×16 with dateline VCs exercises deadlock-free torus operation
//! under the armed watchdog; the 64×64 and 128×128 rows are the scale
//! the tile-sharded kernel exists for (the dense reference kernel is
//! excluded from those rows — it would dominate the sweep's wall time
//! without adding information; the serial active-set kernel still runs
//! them at full length as the speedup baseline, and kernel equality is
//! asserted per point exactly as everywhere else).
//!
//! **Supervision** (schema 8): every grid point × kernel executes as an
//! isolated job on the checkpointed [`lnoc_bench::runner`] — panic
//! capture, an optional wall-clock deadline plus the engine's
//! deterministic cycle budget (`--deadline-cycles`), bounded retry with
//! backoff — and its serialized result lands in a content-addressed
//! cache keyed by a canonical config digest. A killed sweep resumed
//! with `--resume` re-runs only the missing points and regenerates the
//! artifacts **byte-identically** (pass `--deterministic` to also pin
//! the wall-time fields so whole files diff clean). Points that
//! exhaust their retries land in `out/x3_gating_sweep_failures.json`
//! while every other point completes; each row carries its
//! `attempts`/`panics`/`deadline_hits` supervision counters.
//!
//! Grid points run serially (characterization is still parallel) so
//! the per-kernel timings are not distorted by core contention. All
//! kernels that run a point are asserted bit-identical; each kernel
//! writes a deterministic per-point stats digest to
//! `out/x3_sweep_stats_<kernel>.json` so CI can diff the kernels as
//! files.
//!
//! **Fault sweep**: the full grid also carries a fault dimension —
//! deterministic [`FaultPlan`]s (fault count × injection rate × gating
//! policy, plus a dead-link saturated dateline-torus point) —
//! quantifying the leakage-savings story under graceful degradation:
//! dropped/unroutable packets, the reachable-pair floor and post-fault
//! latency land in the same rows and digests, and the faulted points
//! are asserted bit-identical across kernels exactly like the healthy
//! ones. Smoke grids opt in with `--faults` (CI runs that per kernel
//! and diffs the digests).
//!
//! ```sh
//! cargo run --release -p lnoc-bench --bin gating_sweep                  # full grid → BENCH_noc.json
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke       # CI smoke grid → out/
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke --faults --kernel sharded --shards 4
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke --deterministic --fuse 5   # simulated kill
//! cargo run --release -p lnoc-bench --bin gating_sweep -- --smoke --deterministic --resume   # finish it
//! ```

use lnoc_bench::digest::{mesh_config, DigestBuilder};
use lnoc_bench::json::{self, Obj};
use lnoc_bench::runner::{failure_manifest, run_jobs, Job, JobAbort, SweepFlags, FLAGS_HELP};
use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_netsim::{
    FaultPlan, MeshConfig, NetworkStats, SimKernel, Simulation, SleepConfig, TrafficPattern,
};
use lnoc_power::gating::{energy_from_counters, evaluate_policy, GatingParams, GatingPolicy};
use lnoc_power::router::RouterPowerModel;
use lnoc_tech::units::Hertz;
use rayon::prelude::*;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-VC input buffer depth used by BOTH the simulated network
/// (`MeshConfig::buffer_depth`) and the leakage/gating-parameter model
/// (`with_buffer_geometry`) — one constant so the two can never
/// silently describe different buffer geometries.
const DEPTH_PER_VC: usize = 4;

/// Cache-key domain: versions the job payload encoding. Bump whenever
/// the payload format or the digested field set changes.
const DIGEST_DOMAIN: &str = "x3.schema8.v1";

/// One point of the sweep grid (kernel-independent).
#[derive(Clone)]
struct GridPoint {
    scheme: Scheme,
    params: GatingParams,
    mesh: (usize, usize),
    rate: f64,
    pattern: TrafficPattern,
    wrap: bool,
    vcs: usize,
    policy: GatingPolicy,
    warmup: u64,
    measure: u64,
    /// Timing repetitions (big meshes run once; the rest best-of-2).
    reps: u32,
    /// Fault schedule for the fault-sweep dimension (`None` = healthy).
    faults: Option<FaultPlan>,
}

impl GridPoint {
    /// Whether the dense reference kernel is excluded from this point
    /// in the *full* sweep (meshes beyond the 32×32 route-table cap,
    /// where dense stepping would dominate the sweep's wall time).
    /// Smoke grids keep every kernel on every point so CI can diff all
    /// digest files row-for-row.
    fn too_big_for_reference(&self) -> bool {
        self.mesh.0 * self.mesh.1 > 1024
    }

    /// Whether only the serial active-set baseline and the event
    /// kernel run this point in the *full* sweep: the 1024×1024
    /// event-kernel showcase row, where even per-cycle tile scans are
    /// prohibitive — the active-set kernel runs it (slowly) purely as
    /// the speedup denominator.
    fn huge_event_showcase(&self) -> bool {
        self.mesh.0 * self.mesh.1 > 16384
    }
}

fn mesh_cfg(
    point: &GridPoint,
    kernel: SimKernel,
    seed: u64,
    shards: usize,
    threads: usize,
    cycle_budget: u64,
) -> MeshConfig {
    MeshConfig {
        width: point.mesh.0,
        height: point.mesh.1,
        injection_rate: point.rate,
        pattern: point.pattern,
        wrap: point.wrap,
        vcs: point.vcs,
        packet_len_flits: 4,
        buffer_depth: DEPTH_PER_VC,
        seed,
        // Every policy (including Never) runs through the FSM so
        // counters are collected; Never simply never sleeps.
        gating: Some(SleepConfig {
            policy: point.policy,
            wake_latency: point.params.wake_latency_cycles,
        }),
        kernel,
        shards,
        threads,
        cycle_budget,
        faults: point.faults.clone(),
        ..MeshConfig::default()
    }
}

/// Deterministic per-point digest for file-level kernel diffing
/// (everything in it must be bit-identical across kernels).
fn stats_digest(point: &GridPoint, seed: u64, stats: &NetworkStats) -> String {
    let hist = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
    let k = stats.total_gating_counters();
    let faults = point
        .faults
        .as_ref()
        .map(|f| f.link_faults + f.router_faults + f.transient_link_faults)
        .unwrap_or(0);
    format!(
        "{{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"pattern\": \"{}\", \"wrap\": {}, \
         \"vcs\": {}, \"seed\": {}, \"rate\": {}, \"policy\": \"{}\", \"faults\": {}, \
         \"packets_injected\": {}, \"packets_delivered\": {}, \"flits_delivered\": {}, \
         \"dropped_at_source\": {}, \"latency_sum\": {}, \"latency_max\": {}, \
         \"idle_intervals\": {}, \"idle_cycles\": {}, \"sleep_entries\": {}, \
         \"wake_stalls\": {}, \"cycles_asleep\": {}, \"dropped_by_fault\": {}, \
         \"packets_unroutable\": {}, \"delivered_post_fault\": {}, \
         \"latency_sum_post_fault\": {}}}",
        point.scheme.name(),
        point.mesh.0,
        point.mesh.1,
        point.pattern.name(),
        point.wrap,
        point.vcs,
        seed,
        point.rate,
        point.policy,
        faults,
        stats.packets_injected,
        stats.packets_delivered,
        stats.flits_delivered,
        stats.packets_dropped_at_source,
        stats.latency_sum,
        stats.latency_max,
        hist.interval_count(),
        hist.total_idle_cycles(),
        k.sleep_entries,
        k.wake_stall_cycles,
        k.cycles_asleep,
        stats.flits_dropped_by_fault,
        stats.packets_unroutable,
        stats.packets_delivered_post_fault,
        stats.latency_sum_post_fault,
    )
}

/// Everything one job run produces, serialized as the cached payload:
/// a flat scalar line (floats as exact bit patterns) plus the
/// kernel-diffable stats digest line, verbatim. Caching the exact
/// bytes is what makes resumed artifacts byte-identical.
struct PointPayload {
    kernel: String,
    shards: u64,
    threads: u64,
    wall_s: f64,
    cycles_per_sec: f64,
    avg_latency: f64,
    throughput: f64,
    wake_stall_cycles: u64,
    dropped_at_source: u64,
    sleep_events: u64,
    energy_never: f64,
    energy_policy: f64,
    offline_energy_never: f64,
    offline_energy_policy: f64,
    dropped_by_fault: u64,
    packets_unroutable: u64,
    min_reachable: f64,
    avg_latency_post_fault: f64,
    /// Cycles the event kernel's time wheel let the clock skip
    /// (0 for the stepping kernels). Telemetry, not statistics: kept
    /// out of [`Self::stats_fingerprint`] by construction.
    cycles_leapt: u64,
    /// Injection arrivals replayed from the wheel (0 for the stepping
    /// kernels). Telemetry like `cycles_leapt`.
    events_processed: u64,
    /// Routers whose settlement debt was paid during the run —
    /// on-touch and at close-out combined (0 for the eager reference
    /// kernel). Telemetry like `cycles_leapt`.
    routers_settled: u64,
    /// Touch-paid debt settlements per clock leap: the actual
    /// per-leap settlement cost, which lazy settlement keeps at
    /// O(touched) instead of O(n). Telemetry like `cycles_leapt`.
    settle_ops_per_leap: f64,
    /// Longest deferred span (cycles) any single settlement replayed.
    /// Telemetry like `cycles_leapt`.
    max_debt_span: u64,
    digest_line: String,
}

impl PointPayload {
    fn render(&self) -> String {
        let scalars = Obj::new()
            .str("kernel", &self.kernel)
            .raw("shards", self.shards)
            .raw("threads", self.threads)
            .f64_bits("wall_s_bits", self.wall_s)
            .f64_bits("cycles_per_sec_bits", self.cycles_per_sec)
            .f64_bits("avg_latency_bits", self.avg_latency)
            .f64_bits("throughput_bits", self.throughput)
            .raw("wake_stall_cycles", self.wake_stall_cycles)
            .raw("dropped_at_source", self.dropped_at_source)
            .raw("sleep_events", self.sleep_events)
            .f64_bits("energy_never_bits", self.energy_never)
            .f64_bits("energy_policy_bits", self.energy_policy)
            .f64_bits("offline_energy_never_bits", self.offline_energy_never)
            .f64_bits("offline_energy_policy_bits", self.offline_energy_policy)
            .raw("dropped_by_fault", self.dropped_by_fault)
            .raw("packets_unroutable", self.packets_unroutable)
            .f64_bits("min_reachable_bits", self.min_reachable)
            .f64_bits("avg_latency_post_fault_bits", self.avg_latency_post_fault)
            .raw("cycles_leapt", self.cycles_leapt)
            .raw("events_processed", self.events_processed)
            .raw("routers_settled", self.routers_settled)
            .f64_bits("settle_ops_per_leap_bits", self.settle_ops_per_leap)
            .raw("max_debt_span", self.max_debt_span)
            .build();
        format!("{scalars}\n{}", self.digest_line)
    }

    fn parse(payload: &str) -> Option<PointPayload> {
        let (scalars, digest_line) = payload.split_once('\n')?;
        Some(PointPayload {
            kernel: json::field_str(scalars, "kernel")?,
            shards: json::field_u64(scalars, "shards")?,
            threads: json::field_u64(scalars, "threads")?,
            wall_s: json::field_f64_bits(scalars, "wall_s_bits")?,
            cycles_per_sec: json::field_f64_bits(scalars, "cycles_per_sec_bits")?,
            avg_latency: json::field_f64_bits(scalars, "avg_latency_bits")?,
            throughput: json::field_f64_bits(scalars, "throughput_bits")?,
            wake_stall_cycles: json::field_u64(scalars, "wake_stall_cycles")?,
            dropped_at_source: json::field_u64(scalars, "dropped_at_source")?,
            sleep_events: json::field_u64(scalars, "sleep_events")?,
            energy_never: json::field_f64_bits(scalars, "energy_never_bits")?,
            energy_policy: json::field_f64_bits(scalars, "energy_policy_bits")?,
            offline_energy_never: json::field_f64_bits(scalars, "offline_energy_never_bits")?,
            offline_energy_policy: json::field_f64_bits(scalars, "offline_energy_policy_bits")?,
            dropped_by_fault: json::field_u64(scalars, "dropped_by_fault")?,
            packets_unroutable: json::field_u64(scalars, "packets_unroutable")?,
            min_reachable: json::field_f64_bits(scalars, "min_reachable_bits")?,
            avg_latency_post_fault: json::field_f64_bits(scalars, "avg_latency_post_fault_bits")?,
            cycles_leapt: json::field_u64(scalars, "cycles_leapt")?,
            events_processed: json::field_u64(scalars, "events_processed")?,
            routers_settled: json::field_u64(scalars, "routers_settled")?,
            settle_ops_per_leap: json::field_f64_bits(scalars, "settle_ops_per_leap_bits")?,
            max_debt_span: json::field_u64(scalars, "max_debt_span")?,
            digest_line: digest_line.to_string(),
        })
    }

    /// Every stats-derived field — everything except the timing
    /// fields, the kernel geometry and the kernel-specific telemetry
    /// counters (`cycles_leapt` / `events_processed` legitimately
    /// differ across kernels) — for the cross-kernel bit-identity
    /// assertion.
    fn stats_fingerprint(&self) -> String {
        format!(
            "{} | {:016x} {:016x} {} {} {} {:016x} {:016x} {:016x} {:016x} {} {} {:016x} {:016x}",
            self.digest_line,
            self.avg_latency.to_bits(),
            self.throughput.to_bits(),
            self.wake_stall_cycles,
            self.dropped_at_source,
            self.sleep_events,
            self.energy_never.to_bits(),
            self.energy_policy.to_bits(),
            self.offline_energy_never.to_bits(),
            self.offline_energy_policy.to_bits(),
            self.dropped_by_fault,
            self.packets_unroutable,
            self.min_reachable.to_bits(),
            self.avg_latency_post_fault.to_bits(),
        )
    }
}

/// Replicates [`lnoc_power::gating::GatingOutcome::savings_fraction`]
/// for energies reconstructed from a payload.
fn savings_fraction(energy_never: f64, energy_policy: f64) -> f64 {
    if energy_never <= 0.0 {
        return 0.0;
    }
    1.0 - energy_policy / energy_never
}

/// The job's cache key: the full engine config (exhaustive, via
/// [`mesh_config`]) plus every sweep-level input that shapes the
/// payload — run lengths, repetitions, the gating parameter set, the
/// clock, and whether timings are pinned.
fn job_digest(
    point: &GridPoint,
    cfg: &MeshConfig,
    reps: u32,
    deterministic: bool,
    clock: Hertz,
) -> String {
    mesh_config(DigestBuilder::new(DIGEST_DOMAIN), cfg)
        .field("scheme", point.scheme.name())
        .field("warmup", point.warmup)
        .field("measure", point.measure)
        .field("reps", reps)
        .field("deterministic", deterministic)
        .f64("clock_hz", clock.0)
        .f64("params.p_idle_awake_w", point.params.p_idle_awake.0)
        .f64("params.p_standby_w", point.params.p_standby.0)
        .f64("params.e_transition_j", point.params.e_transition.0)
        .field(
            "params.wake_latency_cycles",
            point.params.wake_latency_cycles,
        )
        .finish()
}

/// Parses `--flag value` style arguments.
fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

const USAGE: &str = "\
gating_sweep — X3 in-loop gating sweep (schema 8)

Grid flags:
  --smoke            CI smoke grid (writes out/x3_gating_sweep_smoke.json
                     instead of the committed BENCH_noc.json)
  --faults           include the fault dimension in smoke grids
                     (the full grid always carries it)
  --kernel <k>       active-set | reference | sharded | event | both | all
                     (default all)
  --seed <n>         sweep seed (default 2005)
  --shards <n>       sharded-kernel tile count (default 8; 0 = one per core)
  --threads <n>      sharded-kernel worker threads (default 0 = auto)
  --vcs <list>       VC counts, e.g. 1,2,4
  --inject-panic     append a job that always panics (supervision demo:
                     retried per policy, then isolated in the manifest)
  --inject-deadlock  append a deadlocking point (the watchdog's typed abort
                     fails fast into the manifest; exit 2)
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}\n{FLAGS_HELP}");
        return;
    }
    let flags = SweepFlags::parse(&args);
    let smoke = args.iter().any(|a| a == "--smoke");
    // The full sweep always carries the fault grid (the committed
    // baseline quantifies graceful degradation); smoke grids opt in
    // with `--faults` so the plain CI smoke run stays minimal.
    let with_faults = !smoke || args.iter().any(|a| a == "--faults");
    let kernels: Vec<SimKernel> = match arg_value(&args, "--kernel") {
        None | Some("all") => vec![
            SimKernel::ActiveSet,
            SimKernel::Reference,
            SimKernel::Sharded,
            SimKernel::EventDriven,
        ],
        Some("both") => vec![SimKernel::ActiveSet, SimKernel::Reference],
        Some("active-set") => vec![SimKernel::ActiveSet],
        Some("reference") => vec![SimKernel::Reference],
        Some("sharded") => vec![SimKernel::Sharded],
        Some("event") => vec![SimKernel::EventDriven],
        Some(other) => {
            panic!(
                "unknown --kernel {other} (active-set | reference | sharded | event | both | all)"
            )
        }
    };
    let seed: u64 = arg_value(&args, "--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(2005);
    // Tile geometry for the sharded kernel. `--shards 0` lets the
    // simulator pick one tile per core; the committed baseline pins 8
    // so the recorded geometry does not depend on the host. Thread
    // count never changes results — only wall time.
    let shards: usize = arg_value(&args, "--shards")
        .map(|s| s.parse().expect("--shards takes an integer"))
        .unwrap_or(8);
    let threads: usize = arg_value(&args, "--threads")
        .map(|s| s.parse().expect("--threads takes an integer"))
        .unwrap_or(0);
    let vc_list: Vec<usize> = arg_value(&args, "--vcs")
        .map(|s| {
            s.split(',')
                .map(|v| v.trim().parse().expect("--vcs takes e.g. 1,2,4"))
                .collect()
        })
        .unwrap_or_else(|| if smoke { vec![1, 2] } else { vec![1, 2, 4] });
    let cfg = if smoke {
        CrossbarConfig {
            flit_bits: 32,
            sim_dt: 0.5e-12,
            ..CrossbarConfig::paper()
        }
    } else {
        CrossbarConfig::paper()
    };
    let schemes: &[Scheme] = if smoke {
        &[Scheme::Sc, Scheme::Dpc]
    } else {
        &Scheme::ALL
    };

    // Characterize each scheme once, in parallel; derive per-VC-lane
    // gating parameters for every requested VC count (the buffer
    // geometry — and with it the gateable leakage — scales with V).
    let ch = Characterizer::new(&cfg);
    let models: Vec<(Scheme, RouterPowerModel)> = schemes
        .par_iter()
        .map(|&scheme| {
            let c = ch.characterize(scheme).expect("characterization");
            (scheme, RouterPowerModel::from_characterization(&c, &cfg))
        })
        .collect();
    let lane_params = |scheme: Scheme, vcs: usize| -> GatingParams {
        let model = &models
            .iter()
            .find(|(s, _)| *s == scheme)
            .expect("characterized")
            .1;
        model
            .clone()
            .with_buffer_geometry(vcs, DEPTH_PER_VC)
            .vc_lane_gating_params(cfg.radix, vcs)
    };

    // Build the grid. The threshold policies are scheme- and
    // VC-specific (each scheme × granularity has its own Minimum Idle
    // Time). The 4×4 grid carries the full scheme × policy matrix at
    // V = 1; the VC dimension re-runs the interesting schemes across
    // granularities; the larger meshes probe the low-rate regime where
    // the fast kernels matter most; the wrapped Tornado point
    // exercises dateline deadlock freedom at saturation; the 32×32
    // medium-rate, 64×64 and 128×128 rows are the sharded kernel's
    // scaling showcase.
    let mut grid: Vec<GridPoint> = Vec::new();
    let mut push = |scheme: Scheme,
                    mesh: (usize, usize),
                    rate: f64,
                    pattern: TrafficPattern,
                    wrap: bool,
                    vcs: usize,
                    policy: GatingPolicy,
                    warmup: u64,
                    measure: u64,
                    reps: u32| {
        grid.push(GridPoint {
            scheme,
            params: lane_params(scheme, vcs),
            mesh,
            rate,
            pattern,
            wrap,
            vcs,
            policy,
            warmup,
            measure,
            reps,
            faults: None,
        });
    };
    let uniform = TrafficPattern::UniformRandom;
    let mit_of = |scheme: Scheme, vcs: usize| lane_params(scheme, vcs).min_idle_cycles(cfg.clock);
    if smoke {
        for &scheme in schemes {
            for &vcs in &vc_list {
                let mit = mit_of(scheme, vcs);
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        (4, 4),
                        0.05,
                        uniform,
                        false,
                        vcs,
                        policy,
                        300,
                        2000,
                        1,
                    );
                }
            }
        }
        // One larger-mesh point keeps the active-set fast path under
        // CI, a short 64×64 point keeps the sharded tile/mailbox path
        // (and its digest) alive under every kernel, and one saturated
        // dateline-torus point keeps the deadlock-freedom path alive
        // (needs vcs >= 2).
        let scheme = *schemes.last().expect("smoke characterizes two schemes");
        let mit = mit_of(scheme, 1);
        for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
            push(
                scheme,
                (16, 16),
                0.02,
                uniform,
                false,
                1,
                policy,
                200,
                1500,
                1,
            );
        }
        for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
            push(
                scheme,
                (64, 64),
                0.005,
                uniform,
                false,
                1,
                policy,
                100,
                600,
                1,
            );
        }
        // One large near-dead mesh keeps the event kernel's leap path
        // — and the lazy settlement debts it leaves behind — under
        // CI's cross-kernel digest diff, with the dense reference as
        // the independent oracle. Both policies run so the gated and
        // ungated close-out templates are each exercised.
        for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
            push(
                scheme,
                (128, 128),
                2e-6,
                TrafficPattern::NearestNeighbor,
                false,
                1,
                policy,
                50,
                400,
                1,
            );
        }
        if let Some(&vcs) = vc_list.iter().find(|&&v| v >= 2) {
            let mit = mit_of(scheme, vcs);
            push(
                scheme,
                (8, 8),
                1.0,
                TrafficPattern::Tornado,
                true,
                vcs,
                GatingPolicy::IdleThreshold(mit),
                200,
                1500,
                1,
            );
            push(
                scheme,
                (8, 8),
                1.0,
                TrafficPattern::Tornado,
                true,
                vcs,
                GatingPolicy::Never,
                200,
                1500,
                1,
            );
        }
    } else {
        // Scheme × rate × policy matrix at the V = 1 baseline
        // granularity.
        for &scheme in schemes {
            let mit = mit_of(scheme, 1);
            let policies = [
                GatingPolicy::Never,
                GatingPolicy::IdleThreshold(mit),
                GatingPolicy::Immediate,
                GatingPolicy::IdleThreshold(4 * mit.max(1)),
            ];
            for rate in [0.02, 0.05, 0.08] {
                for &policy in &policies {
                    push(
                        scheme,
                        (4, 4),
                        rate,
                        uniform,
                        false,
                        1,
                        policy,
                        1000,
                        12000,
                        2,
                    );
                }
            }
        }
        // VC-granularity dimension: how finer per-VC gating moves the
        // energy/latency frontier, for the baseline and the
        // best-gating scheme. vcs = 1 is skipped here — the baseline
        // matrix above already carries those exact points (same rate,
        // same policies), and duplicating them would both waste two
        // 13k-cycle runs per kernel and double-count rows in any
        // aggregation over the committed JSON.
        for &scheme in schemes
            .iter()
            .filter(|s| matches!(s, Scheme::Sc | Scheme::Dpc))
        {
            for &vcs in vc_list.iter().filter(|&&v| v > 1) {
                let mit = mit_of(scheme, vcs);
                for policy in [
                    GatingPolicy::Never,
                    GatingPolicy::IdleThreshold(mit),
                    GatingPolicy::Immediate,
                ] {
                    push(
                        scheme,
                        (4, 4),
                        0.05,
                        uniform,
                        false,
                        vcs,
                        policy,
                        1000,
                        12000,
                        2,
                    );
                }
            }
        }
        // Scaling points: low-rate large meshes — the ultra-low
        // utilization regime the paper's leakage argument (and the
        // fast kernels) target.
        for &scheme in schemes
            .iter()
            .filter(|s| matches!(s, Scheme::Sc | Scheme::Dpc))
        {
            let mit = mit_of(scheme, 1);
            for rate in [0.0025, 0.005] {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        (16, 16),
                        rate,
                        uniform,
                        false,
                        1,
                        policy,
                        1000,
                        12000,
                        2,
                    );
                }
            }
        }
        for &scheme in schemes.iter().filter(|s| matches!(s, Scheme::Dpc)) {
            let mit = mit_of(scheme, 1);
            for rate in [0.0025, 0.005] {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        (32, 32),
                        rate,
                        uniform,
                        false,
                        1,
                        policy,
                        500,
                        8000,
                        2,
                    );
                }
            }
            // The sharded-kernel acceptance row: 32×32 at medium rate,
            // where the active set is large and the serial kernels
            // have no quiescence to skip.
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                push(
                    scheme,
                    (32, 32),
                    0.05,
                    uniform,
                    false,
                    1,
                    policy,
                    500,
                    6000,
                    2,
                );
            }
            // The scales the sharded kernel exists for. The reference
            // kernel is excluded (too_big_for_reference); the serial
            // active-set kernel runs full length as the speedup
            // baseline.
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                push(
                    scheme,
                    (64, 64),
                    0.005,
                    uniform,
                    false,
                    1,
                    policy,
                    500,
                    4000,
                    1,
                );
            }
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                push(
                    scheme,
                    (128, 128),
                    0.0025,
                    uniform,
                    false,
                    1,
                    policy,
                    200,
                    1500,
                    1,
                );
            }
            // Event-kernel acceptance rows: mid-size meshes at
            // vanishing rates with local (nearest-neighbour, 1-hop)
            // traffic, so the network quiesces between arrivals and
            // the wheel leaps the dead windows. These are the rows the
            // ">= 10x over active-set" acceptance number is measured
            // on (see `event_low_rate_10x_rows` below).
            for (mesh, rate, warmup, measure) in [
                ((64, 64), 1e-5, 500, 4000),
                ((64, 64), 2e-6, 500, 4000),
                ((128, 128), 2e-6, 200, 1500),
            ] {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        mesh,
                        rate,
                        TrafficPattern::NearestNeighbor,
                        false,
                        1,
                        policy,
                        warmup,
                        measure,
                        1,
                    );
                }
            }
            // The scale showcase rows: quarter-million- and
            // million-router meshes at vanishing rates with
            // nearest-neighbour traffic. Stepping kernels pay an O(n)
            // injection scan per cycle here; the wheel leaps those
            // scans away, and with lazy per-router settlement each
            // leap pays only for the routers actually touched —
            // quiescent routers carry settlement debt that the run-end
            // close-out pays once, so the whole run is O(touched) plus
            // one O(n) walk (`routers_settled` / `settle_ops_per_leap`
            // / `max_debt_span` report that machinery per row;
            // huge_event_showcase keeps the other kernels off these
            // rows).
            for (mesh, rate, warmup, measure) in
                [((512, 512), 2e-7, 100, 500), ((1024, 1024), 5e-8, 50, 250)]
            {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        mesh,
                        rate,
                        TrafficPattern::NearestNeighbor,
                        false,
                        1,
                        policy,
                        warmup,
                        measure,
                        1,
                    );
                }
            }
        }
        // Deadlock-free saturated torus: Tornado at full offered load
        // on a wrapped 16×16 with dateline VCs, watchdog armed (the
        // default). Per-VC gating numbers under heavy, structured
        // traffic.
        if let Some(&vcs) = vc_list.iter().find(|&&v| v >= 2) {
            for &scheme in schemes.iter().filter(|s| matches!(s, Scheme::Dpc)) {
                let mit = mit_of(scheme, vcs);
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    push(
                        scheme,
                        (16, 16),
                        1.0,
                        TrafficPattern::Tornado,
                        true,
                        vcs,
                        policy,
                        500,
                        6000,
                        2,
                    );
                }
            }
        }
    }
    // Fault-sweep dimension: deterministic fault plans — fault count ×
    // injection rate × gating policy, each with its own Never row as
    // the faulted latency baseline, plus a dead-link saturated
    // dateline torus. Plan seeds derive from the sweep seed so
    // `--seed` reproduces the whole scenario, kills included, and
    // every faulted point is asserted bit-identical across kernels
    // exactly like the healthy ones.
    if with_faults {
        let scheme = Scheme::Dpc;
        let (mesh, warmup, measure, reps) = if smoke {
            ((8, 8), 100u64, 1500u64, 1u32)
        } else {
            ((16, 16), 500, 8000, 2)
        };
        let mit = mit_of(scheme, 1);
        // (permanent link, router, transient link) fault counts.
        let plans: &[(usize, usize, usize)] = if smoke {
            &[(1, 0, 0), (2, 1, 1)]
        } else {
            &[(1, 0, 0), (2, 0, 1), (2, 1, 2)]
        };
        let rates: &[f64] = if smoke { &[0.05] } else { &[0.02, 0.05] };
        for (i, &(links, routers, transients)) in plans.iter().enumerate() {
            let plan = FaultPlan {
                seed: seed ^ (0xFA17 + i as u64),
                link_faults: links,
                router_faults: routers,
                transient_link_faults: transients,
                transient_duration: measure / 4,
                start_cycle: warmup,
                window: measure / 2,
                ..FaultPlan::default()
            };
            for &rate in rates {
                for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                    grid.push(GridPoint {
                        scheme,
                        params: lane_params(scheme, 1),
                        mesh,
                        rate,
                        pattern: uniform,
                        wrap: false,
                        vcs: 1,
                        policy,
                        warmup,
                        measure,
                        reps,
                        faults: Some(plan.clone()),
                    });
                }
            }
        }
        // Graceful degradation at saturation: the dateline torus loses
        // one link mid-measurement and must keep streaming around the
        // detour without tripping the watchdog.
        if let Some(&vcs) = vc_list.iter().find(|&&v| v >= 2) {
            let mit = mit_of(scheme, vcs);
            let plan = FaultPlan {
                seed: seed ^ 0xDEAD,
                link_faults: 1,
                router_faults: 0,
                transient_link_faults: 0,
                start_cycle: warmup + measure / 3,
                window: 1,
                ..FaultPlan::default()
            };
            for policy in [GatingPolicy::Never, GatingPolicy::IdleThreshold(mit)] {
                grid.push(GridPoint {
                    scheme,
                    params: lane_params(scheme, vcs),
                    mesh,
                    rate: 1.0,
                    pattern: TrafficPattern::Tornado,
                    wrap: true,
                    vcs,
                    policy,
                    warmup,
                    measure,
                    reps,
                    faults: Some(plan.clone()),
                });
            }
        }
    }
    let threads_available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    eprintln!(
        "sweeping {} grid points × up to {} kernel(s), seed {seed}, vcs {:?}, \
         shards {shards}, threads {} (host cores: {threads_available}), serially (timings stay clean)…",
        grid.len(),
        kernels.len(),
        vc_list,
        if threads == 0 { "auto".to_string() } else { threads.to_string() },
    );

    // Which kernels run a given point: the full sweep excludes the
    // dense reference from the big meshes and runs the 1024×1024
    // event-showcase row on the active-set/event pair only; smoke
    // grids (which carry neither) keep every kernel everywhere so the
    // per-kernel digest files stay row-aligned for CI's diff.
    let kernels_for = |point: &GridPoint| -> Vec<SimKernel> {
        kernels
            .iter()
            .copied()
            .filter(|&k| {
                if smoke {
                    return true;
                }
                match k {
                    SimKernel::Reference => !point.too_big_for_reference(),
                    SimKernel::Sharded => !point.huge_event_showcase(),
                    _ => true,
                }
            })
            .collect()
    };

    // Build one supervised job per grid point × kernel. Jobs run
    // serially under the runner (wall times mean something), each
    // isolated on its own thread with panic capture and the deadline.
    // One untimed throwaway per distinct mesh size pays the
    // page-fault/warm-up cost outside any timed run (skipped in
    // deterministic mode, where timings are pinned to zero anyway).
    let deterministic = flags.deterministic;
    let clock = cfg.clock;
    let warmed: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut jobs: Vec<Job> = Vec::new();
    // Parallel to `jobs`: which (grid point, kernel) a job computes
    // (`None` for the injected demo jobs, which contribute no rows).
    let mut job_meta: Vec<Option<(usize, SimKernel)>> = Vec::new();
    for (point_idx, point) in grid.iter().enumerate() {
        for kernel in kernels_for(point) {
            let reps = if deterministic { 1 } else { point.reps.max(1) };
            let sim_cfg = mesh_cfg(point, kernel, seed, shards, threads, flags.deadline_cycles);
            let digest = job_digest(point, &sim_cfg, reps, deterministic, clock);
            let fault_tag = point.faults.as_ref().map(|_| " faulted").unwrap_or("");
            let label = format!(
                "{} {}x{} {} rate {} vcs {} {}{} [{}]",
                point.scheme.name(),
                point.mesh.0,
                point.mesh.1,
                point.pattern.name(),
                point.rate,
                point.vcs,
                point.policy,
                fault_tag,
                kernel.name(),
            );
            let point = point.clone();
            let warmed = warmed.clone();
            jobs.push(Job::new(label, digest, move || {
                if !deterministic {
                    let first_at_this_size = {
                        let mut w = warmed.lock().unwrap_or_else(|p| p.into_inner());
                        if w.contains(&point.mesh) {
                            false
                        } else {
                            w.push(point.mesh);
                            true
                        }
                    };
                    // Huge showcase rows skip the throwaway: at
                    // minutes per stepping run the page-fault warm-up
                    // is noise, and doubling the row's cost is not.
                    if first_at_this_size && !point.huge_event_showcase() {
                        let mut sim = Simulation::new(sim_cfg.clone());
                        let _ = sim.try_run(point.warmup, point.measure);
                    }
                }
                // Construction (including the active-set kernel's
                // route-table build) stays outside the timer: cycle
                // rate measures the loop. Best-of-`reps` wall time —
                // the repeats are identical simulations, so the
                // minimum is the least-noise estimate.
                let mut best: Option<(NetworkStats, f64, usize, usize, [u64; 6])> = None;
                for _ in 0..reps {
                    let mut sim = Simulation::new(sim_cfg.clone());
                    let geometry = (sim.shards(), sim.threads());
                    let start = Instant::now();
                    let stats = sim
                        .try_run(point.warmup, point.measure)
                        .map_err(JobAbort::from_sim)?;
                    let wall = start.elapsed().as_secs_f64();
                    // Leap/settlement telemetry is identical across
                    // reps (the runs are identical simulations);
                    // carrying it with the best rep just keeps one
                    // tuple.
                    let telemetry = [
                        sim.cycles_leapt_total(),
                        sim.events_processed_total(),
                        sim.routers_settled_total(),
                        sim.settle_ops_total(),
                        sim.leaps_total(),
                        sim.max_debt_span(),
                    ];
                    if best.as_ref().is_none_or(|(_, w, ..)| wall < *w) {
                        best = Some((stats, wall, geometry.0, geometry.1, telemetry));
                    }
                }
                let (stats, wall_s, shards, threads, telemetry) = best.expect("at least one rep");
                let [cycles_leapt, events_processed, routers_settled, settle_ops, leaps, max_debt_span] =
                    telemetry;
                let (wall_s, cycles_per_sec) = if deterministic {
                    (0.0, 0.0)
                } else {
                    (wall_s, (point.warmup + point.measure) as f64 / wall_s)
                };
                let counters = stats.total_gating_counters();
                let in_loop = energy_from_counters(&counters, &point.params, clock);
                let offline = evaluate_policy(
                    &stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS),
                    &point.params,
                    point.policy,
                    clock,
                );
                Ok(PointPayload {
                    kernel: sim_cfg.kernel.name().to_string(),
                    shards: shards as u64,
                    threads: threads as u64,
                    wall_s,
                    cycles_per_sec,
                    avg_latency: stats.avg_latency(),
                    throughput: stats.throughput(),
                    wake_stall_cycles: stats.wake_stall_cycles(),
                    dropped_at_source: stats.packets_dropped_at_source,
                    sleep_events: in_loop.sleep_events,
                    energy_never: in_loop.energy_never.0,
                    energy_policy: in_loop.energy_policy.0,
                    offline_energy_never: offline.energy_never.0,
                    offline_energy_policy: offline.energy_policy.0,
                    dropped_by_fault: stats.flits_dropped_by_fault,
                    packets_unroutable: stats.packets_unroutable,
                    min_reachable: stats.min_reachable_fraction,
                    avg_latency_post_fault: stats.avg_latency_post_fault(),
                    cycles_leapt,
                    events_processed,
                    routers_settled,
                    settle_ops_per_leap: settle_ops as f64 / leaps.max(1) as f64,
                    max_debt_span,
                    digest_line: stats_digest(&point, seed, &stats),
                }
                .render())
            }));
            job_meta.push(Some((point_idx, kernel)));
        }
    }
    // Injected-failure demo jobs: exercise the supervision path
    // end-to-end (retry → manifest → exit 2) without touching the
    // real grid.
    if args.iter().any(|a| a == "--inject-panic") {
        jobs.push(Job::new(
            "injected panic (supervision demo)",
            DigestBuilder::new("x3.inject-panic.v1")
                .field("seed", seed)
                .finish(),
            || panic!("injected panic (supervision demo)"),
        ));
        job_meta.push(None);
    }
    if args.iter().any(|a| a == "--inject-deadlock") {
        // A config the engine provably wedges on: saturated Tornado on
        // a wrapped 8×8 with a single VC (no dateline escape), short
        // watchdog. The watchdog's typed abort fails fast — no retries
        // burned — and lands in the manifest while every real point
        // completes.
        let wedge = MeshConfig {
            width: 8,
            height: 8,
            wrap: true,
            vcs: 1,
            injection_rate: 1.0,
            pattern: TrafficPattern::Tornado,
            packet_len_flits: 8,
            source_queue_cap: 8,
            watchdog_cycles: 500,
            seed: 5,
            ..MeshConfig::default()
        };
        let digest = mesh_config(DigestBuilder::new("x3.inject-deadlock.v1"), &wedge)
            .field("warmup", 0u64)
            .field("measure", 5_000u64)
            .finish();
        jobs.push(Job::new(
            "injected deadlock (supervision demo)",
            digest,
            move || {
                let mut sim = Simulation::new(wedge.clone());
                let stats = sim.try_run(0, 5_000).map_err(JobAbort::from_sim)?;
                let _ = stats;
                Err(JobAbort {
                    kind: lnoc_bench::runner::AbortKind::Other,
                    message: "expected deadlock did not occur".to_string(),
                })
            },
        ));
        job_meta.push(None);
    }

    let runner_cfg = flags.runner_config("gating_sweep");
    eprintln!(
        "runner: {} jobs, cache {}, journal {}, {}",
        jobs.len(),
        runner_cfg.cache_dir.display(),
        runner_cfg.journal_path.display(),
        flags.summary(),
    );
    let report = run_jobs(&runner_cfg, &jobs);
    lnoc_bench::write_artifact(
        "x3_gating_sweep_failures.json",
        &failure_manifest(&jobs, &report),
    );

    // Assemble rows from the payloads (fresh or cached — the bytes are
    // identical either way). Failed / not-run jobs contribute no row.
    struct Row {
        point_idx: usize,
        payload: PointPayload,
        attempts: u32,
        panics: u32,
        deadline_hits: u32,
    }
    let mut rows: Vec<Row> = Vec::new();
    for ((status, meta), job) in report.statuses.iter().zip(&job_meta).zip(&jobs) {
        let (Some((point_idx, _)), Some(payload)) = (meta, status.payload()) else {
            continue;
        };
        let payload = PointPayload::parse(payload)
            .unwrap_or_else(|| panic!("corrupt payload for job {}", job.label));
        let m = status.meta().expect("done jobs carry meta");
        rows.push(Row {
            point_idx: *point_idx,
            payload,
            attempts: m.attempts,
            panics: m.panics,
            deadline_hits: m.deadline_hits,
        });
    }
    // Kernel bit-identity, asserted on the serialized stats (digest
    // line + every stats-derived scalar): all kernels that ran a point
    // must agree exactly, wherever their payloads came from.
    for (point_idx, point) in grid.iter().enumerate() {
        let fps: Vec<(&str, String)> = rows
            .iter()
            .filter(|r| r.point_idx == point_idx)
            .map(|r| (r.payload.kernel.as_str(), r.payload.stats_fingerprint()))
            .collect();
        for pair in fps.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "kernel divergence ({} vs {}) at scheme {} mesh {:?} rate {} vcs {} policy {}",
                pair[0].0, pair[1].0, point.scheme, point.mesh, point.rate, point.vcs, point.policy
            );
        }
    }

    // Baseline latency per (mesh, rate, pattern, wrap, vcs, faults):
    // the Never policy (identical network behaviour for every scheme
    // and kernel). Faulted points compare against their own faulted
    // Never baseline, so the penalty isolates gating from degradation.
    // `None` (rendered null) when the baseline point failed or has not
    // run yet — an interrupted sweep still emits what it has.
    let base_latency = |p: &GridPoint| -> Option<f64> {
        rows.iter()
            .find(|r| {
                let b = &grid[r.point_idx];
                b.mesh == p.mesh
                    && b.rate == p.rate
                    && b.pattern == p.pattern
                    && b.wrap == p.wrap
                    && b.vcs == p.vcs
                    && b.faults == p.faults
                    && b.policy == GatingPolicy::Never
            })
            .map(|r| r.payload.avg_latency)
    };
    // Cycle rate of a given kernel on a given point, if it ran (and
    // timings are not pinned by --deterministic).
    let cps_of = |point_idx: usize, kernel: SimKernel| -> Option<f64> {
        rows.iter()
            .find(|r| r.point_idx == point_idx && r.payload.kernel == kernel.name())
            .map(|r| r.payload.cycles_per_sec)
            .filter(|&cps| cps > 0.0)
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 8,\n");
    let _ = writeln!(
        json,
        "  \"note\": \"in-loop per-VC-lane sleep-FSM gating sweep; gating params are one output \
         VC lane (1/V crossbar port share + downstream input-VC buffer bank); every grid point x \
         kernel runs as an isolated supervised job (panic capture, cycle-budget + wall-clock \
         deadline, bounded retry) whose result is cached under its canonical config digest — a \
         killed sweep resumed with --resume regenerates this file byte-identically; attempts / \
         panics / deadline_hits are each row's supervision counters; agreement = |in_loop - \
         offline| / offline on the same run's histograms; all kernels that run a point are \
         asserted bit-identical before timing is reported; speedup_vs_active_set = cycle rate of \
         the row's kernel over the serial active-set kernel on the same point (the sharded rows' \
         tile geometry is in shards/threads; threads_available records the host's cores — on a \
         single-core host the sharded speedup measures tile cache locality only, not parallel \
         scaling); the wrapped tornado points run dateline VCs at saturation under the armed \
         watchdog; cycles_leapt / events_processed / leap_fraction are the event kernel's \
         time-wheel telemetry (how much of the run the clock skipped; identically zero for the \
         stepping kernels and excluded from the bit-identity assertion); routers_settled / \
         settle_ops_per_leap / max_debt_span are the lazy-settlement counters (debts paid over \
         the run, touch-paid settlements per leap, longest span replayed at once; telemetry, \
         excluded like cycles_leapt); the 64x64/128x128 rows \
         exclude the dense reference kernel and the 512x512/1024x1024 event-showcase rows run \
         only the active-set/event pair; faults > 0 rows \
         run a seeded FaultPlan (permanent + transient link/router kills) with fault-aware \
         rerouting — their latency penalty is against their own faulted Never baseline, and \
         min_reachable_pct / dropped_by_fault / packets_unroutable / avg_latency_post_fault \
         quantify graceful degradation\","
    );
    let _ = writeln!(
        json,
        "  \"kernels\": [{}],",
        kernels
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"threads_available\": {threads_available},");
    let _ = writeln!(
        json,
        "  \"vc_counts\": [{}],",
        vc_list
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"deterministic\": {deterministic},");
    let mut worst_disagreement: f64 = 0.0;
    let mut result_rows: Vec<String> = Vec::new();
    for r in &rows {
        let point = &grid[r.point_idx];
        let p = &r.payload;
        let penalty = base_latency(point)
            .map(|b| format!("{:.3}", p.avg_latency - b))
            .unwrap_or_else(|| "null".to_string());
        let agreement = if p.offline_energy_policy > 0.0 {
            (p.energy_policy - p.offline_energy_policy).abs() / p.offline_energy_policy
        } else {
            0.0
        };
        if point.policy != GatingPolicy::Never {
            worst_disagreement = worst_disagreement.max(agreement);
        }
        let speedup_vs_active = cps_of(r.point_idx, SimKernel::ActiveSet)
            .map(|base| format!("{:.2}", p.cycles_per_sec / base))
            .unwrap_or_else(|| "null".to_string());
        let fault_count = point
            .faults
            .as_ref()
            .map(|f| f.link_faults + f.router_faults + f.transient_link_faults)
            .unwrap_or(0);
        result_rows.push(format!(
            "{{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"pattern\": \"{}\", \"wrap\": {}, \
             \"vcs\": {}, \"seed\": {}, \"rate\": {}, \"policy\": \"{}\", \
             \"kernel\": \"{}\", \"shards\": {}, \"threads\": {}, \
             \"speedup_vs_active_set\": {}, \"cycles_leapt\": {}, \"events_processed\": {}, \
             \"leap_fraction\": {:.4}, \"routers_settled\": {}, \"settle_ops_per_leap\": {:.2}, \
             \"max_debt_span\": {}, \"mit_cycles\": {}, \"cycles\": {}, \
             \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}, \"avg_latency_cy\": {:.3}, \
             \"latency_penalty_cy\": {}, \"throughput\": {:.4}, \"wake_stall_cycles\": {}, \
             \"sleep_events\": {}, \"dropped_at_source\": {}, \"energy_never_j\": {:.6e}, \
             \"energy_policy_j\": {:.6e}, \"saved_pct\": {:.2}, \"offline_energy_j\": {:.6e}, \
             \"offline_saved_pct\": {:.2}, \"agreement_pct\": {:.3}, \"faults\": {}, \
             \"dropped_by_fault\": {}, \"packets_unroutable\": {}, \
             \"min_reachable_pct\": {:.2}, \"avg_latency_post_fault\": {:.3}, \
             \"attempts\": {}, \"panics\": {}, \"deadline_hits\": {}}}",
            point.scheme.name(),
            point.mesh.0,
            point.mesh.1,
            point.pattern.name(),
            point.wrap,
            point.vcs,
            seed,
            point.rate,
            point.policy,
            p.kernel,
            p.shards,
            p.threads,
            speedup_vs_active,
            p.cycles_leapt,
            p.events_processed,
            p.cycles_leapt as f64 / (point.warmup + point.measure) as f64,
            p.routers_settled,
            p.settle_ops_per_leap,
            p.max_debt_span,
            point.params.min_idle_cycles(cfg.clock),
            point.warmup + point.measure,
            p.wall_s,
            p.cycles_per_sec,
            p.avg_latency,
            penalty,
            p.throughput,
            p.wake_stall_cycles,
            p.sleep_events,
            p.dropped_at_source,
            p.energy_never,
            p.energy_policy,
            savings_fraction(p.energy_never, p.energy_policy) * 100.0,
            p.offline_energy_policy,
            savings_fraction(p.offline_energy_never, p.offline_energy_policy) * 100.0,
            agreement * 100.0,
            fault_count,
            p.dropped_by_fault,
            p.packets_unroutable,
            p.min_reachable * 100.0,
            p.avg_latency_post_fault,
            r.attempts,
            r.panics,
            r.deadline_hits,
        ));
    }
    let _ = writeln!(
        json,
        "  \"results\": {},",
        json::array(&result_rows, "    ", "  ")
    );

    // Per-point kernel speedups: active-set over reference (the PR 3
    // baseline), sharded over active-set (the tiling win) and event
    // over active-set (the time-wheel leap win — the low-rate
    // acceptance number, honestly below 1.0 at saturation) — the
    // numbers the README performance table quotes.
    let mut speedups: Vec<String> = Vec::new();
    let mut min_16x16_low_rate: f64 = f64::INFINITY;
    let mut min_sharded_32x32_medium: f64 = f64::INFINITY;
    let mut min_event_low_rate: f64 = f64::INFINITY;
    let mut event_low_rate_10x_rows: u32 = 0;
    for (i, point) in grid.iter().enumerate() {
        let active = cps_of(i, SimKernel::ActiveSet);
        let reference = cps_of(i, SimKernel::Reference);
        let sharded = cps_of(i, SimKernel::Sharded);
        let event = cps_of(i, SimKernel::EventDriven);
        let (Some(active), reference, sharded, event) = (active, reference, sharded, event) else {
            continue;
        };
        let vs_ref = reference.map(|r| active / r);
        let sharded_vs_active = sharded.map(|s| s / active);
        let event_vs_active = event.map(|e| e / active);
        if let Some(r) = vs_ref {
            if point.mesh == (16, 16) && point.rate <= 0.02 {
                min_16x16_low_rate = min_16x16_low_rate.min(r);
            }
        }
        if let Some(s) = sharded_vs_active {
            if point.mesh == (32, 32) && point.rate >= 0.05 {
                min_sharded_32x32_medium = min_sharded_32x32_medium.min(s);
            }
        }
        if let Some(e) = event_vs_active {
            // The event kernel's target regime: the low-rate rows
            // (the same ultra-low-utilization regime the leakage
            // argument sweeps).
            if point.rate <= 0.005 {
                min_event_low_rate = min_event_low_rate.min(e);
                if e >= 10.0 {
                    event_low_rate_10x_rows += 1;
                }
            }
        }
        let fmt_opt = |v: Option<f64>| {
            v.map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "null".into())
        };
        speedups.push(format!(
            "{{\"scheme\": \"{}\", \"mesh\": \"{}x{}\", \"pattern\": \"{}\", \
             \"vcs\": {}, \"rate\": {}, \"policy\": \"{}\", \
             \"active_set_vs_reference\": {}, \"sharded_vs_active_set\": {}, \
             \"event_vs_active_set\": {}}}",
            point.scheme.name(),
            point.mesh.0,
            point.mesh.1,
            point.pattern.name(),
            point.vcs,
            point.rate,
            point.policy,
            fmt_opt(vs_ref),
            fmt_opt(sharded_vs_active),
            fmt_opt(event_vs_active),
        ));
    }
    let _ = write!(
        json,
        "  \"speedup\": {}\n}}\n",
        json::array(&speedups, "    ", "  ")
    );

    println!("{json}");
    println!(
        "worst in-loop vs offline disagreement (gated points): {:.3}%",
        worst_disagreement * 100.0
    );
    assert!(
        worst_disagreement < 0.05,
        "in-loop energy must agree with the offline model within 5%"
    );
    if min_16x16_low_rate.is_finite() {
        println!("minimum active-set speedup on 16x16, rate <= 0.02: {min_16x16_low_rate:.2}x");
    }
    if min_sharded_32x32_medium.is_finite() {
        println!(
            "minimum sharded speedup vs active-set on 32x32, rate >= 0.05 \
             (threads_available = {threads_available}): {min_sharded_32x32_medium:.2}x"
        );
    }
    if min_event_low_rate.is_finite() {
        println!(
            "minimum event-kernel speedup vs active-set on rate <= 0.005 rows: \
             {min_event_low_rate:.2}x ({event_low_rate_10x_rows} rows at >= 10x)"
        );
    }

    // Stats digests for file-level kernel diffing in CI (in grid
    // order, exactly the rows that ran).
    for &kernel in &kernels {
        let body: Vec<&String> = rows
            .iter()
            .filter(|r| r.payload.kernel == kernel.name())
            .map(|r| &r.payload.digest_line)
            .collect();
        let mut s = String::from("[\n");
        for (i, d) in body.iter().enumerate() {
            let _ = writeln!(s, "  {}{}", d, if i + 1 == body.len() { "" } else { "," });
        }
        s.push_str("]\n");
        lnoc_bench::write_artifact(&format!("x3_sweep_stats_{}.json", kernel.name()), &s);
    }

    if smoke {
        lnoc_bench::write_artifact("x3_gating_sweep_smoke.json", &json);
    } else {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_noc.json");
        std::fs::write(&path, &json).expect("write BENCH_noc.json");
        println!("wrote {}", path.display());
    }
    if report.fuse_tripped {
        eprintln!(
            "sweep interrupted by --fuse after {} fresh jobs — finish it with --resume",
            report.executed
        );
    }
    std::process::exit(report.exit_code());
}
