//! Experiments F1–F3: regenerate the paper's Figures 1–3 as
//! machine-readable schematics (SPICE netlists + Graphviz DOT + device
//! roster summaries).

use lnoc_core::config::CrossbarConfig;
use lnoc_core::schematic;
use lnoc_core::scheme::Scheme;

fn main() {
    let cfg = CrossbarConfig::paper();
    let artifacts = [
        (Scheme::Dfc, "fig1_dfc"),
        (Scheme::Dpc, "fig2_dpc"),
        (Scheme::Sdfc, "fig3a_sdfc"),
        (Scheme::Sdpc, "fig3b_sdpc"),
        (Scheme::Sc, "baseline_sc"),
    ];
    for (scheme, stem) in artifacts {
        lnoc_bench::write_artifact(
            &format!("{stem}.sp"),
            &schematic::export_spice(scheme, &cfg),
        );
        lnoc_bench::write_artifact(&format!("{stem}.dot"), &schematic::export_dot(scheme, &cfg));
        lnoc_bench::write_artifact(
            &format!("{stem}_devices.txt"),
            &schematic::export_summary(scheme, &cfg),
        );
        println!("{}", schematic::export_summary(scheme, &cfg));
    }
}
