//! Experiment X1: minimum idle time vs clock frequency, per scheme —
//! the sensitivity study behind Table 1's single-frequency MIT row.
//!
//! Each scheme's characterization runs as an isolated job on the
//! supervised [`lnoc_bench::runner`] (characterization is the
//! expensive step here — there are no network simulations), with the
//! MIT row cached under a digest of the scheme, the crossbar config
//! and the clock list, so `--resume` skips schemes already done.

use lnoc_bench::digest::DigestBuilder;
use lnoc_bench::runner::{failure_manifest, run_jobs, Job, SweepFlags, FLAGS_HELP};
use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_power::breakeven::min_idle_cycles;
use lnoc_power::report::TextTable;
use lnoc_tech::units::{Hertz, Joules, Watts};

const DIGEST_DOMAIN: &str = "x1.v1";

const USAGE: &str = "\
idle_sweep — X1 minimum idle time vs clock frequency per scheme

Sweep flags:
  --kernel <k>       accepted for CLI uniformity with the other sweeps
                     and validated, but X1 runs no network simulations,
                     so the choice of simulation kernel changes nothing
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}\n{FLAGS_HELP}");
        return;
    }
    // X1 is pure circuit characterization — there is no cycle loop to
    // pick a kernel for — but the shared sweep harness passes the same
    // flag set to every binary, so validate it rather than erroring.
    if let Some(i) = args.iter().position(|a| a == "--kernel") {
        let k = args.get(i + 1).map(String::as_str).unwrap_or("");
        assert!(
            matches!(k, "auto" | "active-set" | "reference" | "sharded" | "event"),
            "unknown --kernel {k} (auto | active-set | reference | sharded | event)"
        );
    }
    let flags = SweepFlags::parse(&args);
    let cfg = CrossbarConfig::paper();
    let clocks: Vec<Hertz> = [1.0e9, 2.0e9, 3.0e9, 4.0e9, 5.0e9]
        .into_iter()
        .map(Hertz)
        .collect();

    // One job per scheme: characterize, then render the MIT cells for
    // every clock as a tab-joined payload line.
    let jobs: Vec<Job> = Scheme::ALL
        .into_iter()
        .map(|scheme| {
            let mut b = DigestBuilder::new(DIGEST_DOMAIN)
                .field("scheme", scheme.name())
                // Derived Debug prints every CrossbarConfig field, so
                // any process/geometry change invalidates the cache.
                .field("crossbar", format_args!("{cfg:?}"));
            for (i, clk) in clocks.iter().enumerate() {
                b = b.f64(&format!("clock.{i}"), clk.0);
            }
            let cfg = cfg.clone();
            let clocks = clocks.clone();
            Job::new(scheme.name(), b.finish(), move || {
                let ch = Characterizer::new(&cfg);
                let c = ch.characterize(scheme).expect("characterization");
                let n = cfg.slice_count() as f64;
                let p_saved = Watts((c.idle_awake_leakage.0 - c.standby_leakage.0) / n);
                let e_trans = Joules(c.transition_energy.0);
                let cells: Vec<String> = clocks
                    .iter()
                    .map(|&clk| min_idle_cycles(e_trans, p_saved, clk).to_string())
                    .collect();
                Ok(cells.join("\t"))
            })
        })
        .collect();

    let runner_cfg = flags.runner_config("idle_sweep");
    let report = run_jobs(&runner_cfg, &jobs);
    lnoc_bench::write_artifact(
        "idle_sweep_failures.json",
        &failure_manifest(&jobs, &report),
    );

    let mut headers = vec!["scheme".to_string()];
    headers.extend(clocks.iter().map(|c| format!("{c:.0}")));
    let mut table = TextTable::new(headers);
    for (scheme, status) in Scheme::ALL.into_iter().zip(&report.statuses) {
        let Some(payload) = status.payload() else {
            continue;
        };
        let mut cells = vec![scheme.name().to_string()];
        cells.extend(payload.split('\t').map(String::from));
        table.row(cells);
    }
    println!("minimum idle time (cycles) vs clock frequency:");
    println!("{table}");
    lnoc_bench::write_artifact("x1_idle_sweep.txt", &table.to_string());
    std::process::exit(report.exit_code());
}
