//! Experiment X1: minimum idle time vs clock frequency, per scheme —
//! the sensitivity study behind Table 1's single-frequency MIT row.

use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_power::breakeven::min_idle_cycles;
use lnoc_power::report::TextTable;
use lnoc_tech::units::{Hertz, Joules, Watts};
use rayon::prelude::*;

fn main() {
    let cfg = CrossbarConfig::paper();
    let ch = Characterizer::new(&cfg);
    let clocks: Vec<Hertz> = [1.0e9, 2.0e9, 3.0e9, 4.0e9, 5.0e9]
        .into_iter()
        .map(Hertz)
        .collect();

    let mut headers = vec!["scheme".to_string()];
    headers.extend(clocks.iter().map(|c| format!("{c:.0}")));
    let mut table = TextTable::new(headers);

    // Scheme characterizations are independent; sweep them in parallel.
    let characterized: Vec<_> = Scheme::ALL
        .into_par_iter()
        .map(|scheme| (scheme, ch.characterize(scheme).expect("characterization")))
        .collect();

    for (scheme, c) in characterized {
        let n = cfg.slice_count() as f64;
        let p_saved = Watts((c.idle_awake_leakage.0 - c.standby_leakage.0) / n);
        let e_trans = Joules(c.transition_energy.0);
        let mut cells = vec![scheme.name().to_string()];
        for &clk in &clocks {
            cells.push(min_idle_cycles(e_trans, p_saved, clk).to_string());
        }
        table.row(cells);
    }
    println!("minimum idle time (cycles) vs clock frequency:");
    println!("{table}");
    lnoc_bench::write_artifact("x1_idle_sweep.txt", &table.to_string());
}
