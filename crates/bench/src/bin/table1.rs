//! Experiment T1/T1a/T1b: regenerate the paper's Table 1, the abstract's
//! headline ranges and the §3 segmentation claims.

use lnoc_core::config::CrossbarConfig;
use lnoc_core::table1::Table1;

fn main() {
    let cfg = CrossbarConfig::paper();
    println!(
        "Table 1 harness: {}×{} crossbar, {} bits/flit, {} (45 nm)",
        cfg.radix, cfg.radix, cfg.flit_bits, cfg.clock
    );
    let measured = Table1::generate(&cfg).expect("characterization");
    let paper = Table1::paper_reference();

    println!("\n=== measured (this reproduction) ===\n{measured}");
    println!("=== published (DATE 2005, Table 1) ===\n{paper}");

    let claims = measured.abstract_claims();
    println!("[T1a] abstract ranges, measured:");
    println!(
        "      active leakage savings {:.2}% – {:.2}%  (paper: 10.13% – 63.57%)",
        claims.active_savings_range.0 * 100.0,
        claims.active_savings_range.1 * 100.0
    );
    println!(
        "      standby leakage savings {:.2}% – {:.2}% (paper: 12.36% – 95.96%)",
        claims.standby_savings_range.0 * 100.0,
        claims.standby_savings_range.1 * 100.0
    );
    println!(
        "      delay penalty ≤ {:.2}%                  (paper: ≤ 4.69%)",
        claims.delay_penalty_range.1 * 100.0
    );

    let (g_sdfc, g_sdpc) = measured.segmentation_gains();
    println!(
        "[T1b] segmentation cuts remaining active leakage by {:.1}% (SDFC vs DFC, paper ≈20%) and {:.1}% (SDPC vs DPC, paper ≈30%)",
        g_sdfc * 100.0,
        g_sdpc * 100.0
    );

    let json_like = format!("{measured:#?}");
    lnoc_bench::write_artifact("table1_measured.txt", &format!("{measured}"));
    lnoc_bench::write_artifact("table1_raw_debug.txt", &json_like);
}
