//! Emits `BENCH_circuit.json` — the committed performance baseline of the
//! circuit engine, so future PRs have a measured trajectory to compare
//! against.
//!
//! Three headline comparisons, each new-engine vs the seed's full-restamp
//! dense kernel (`SolverKind::Reference`) measured in the same binary:
//!
//! 1. `transient/inverter_chain_100ps` — [`CHAIN_STAGES`]-stage chain
//!    (300 stages, ~300 unknowns), 100 ps window;
//! 2. `crossbar16/dc_slice` — one radix-16 crossbar-slice leakage solve;
//! 3. `table1_single_corner` — the full five-scheme Table 1 pipeline at
//!    the reduced configuration (parallel + sparse vs serial reference).
//!
//! Run with `cargo run --release -p lnoc-bench --bin bench_circuit`.

use lnoc_bench::circuits::{crossbar_16x16_cfg, inverter_chain, table1_bench_cfg, CHAIN_STAGES};
use lnoc_circuit::dc::{self, NewtonOptions, SolverKind};
use lnoc_circuit::transient::{self, TransientSpec};
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_core::slice::BitSlice;
use lnoc_core::table1::Table1;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One measured comparison.
struct Entry {
    name: &'static str,
    fast_s: f64,
    baseline_s: f64,
    runs: usize,
}

/// Median wall time of `runs` executions of `f`.
fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn chain_spec(solver: SolverKind) -> TransientSpec {
    let mut spec = TransientSpec::new(100e-12, 0.2e-12);
    spec.newton.solver = solver;
    spec
}

fn main() {
    let mut entries = Vec::new();

    // --- 1. Inverter chain transient.
    let (chain, _out) = inverter_chain(CHAIN_STAGES);
    println!("measuring transient/inverter_chain_100ps ({CHAIN_STAGES} stages)…");
    let fast = median_secs(5, || {
        black_box(transient::run(&chain, &chain_spec(SolverKind::Auto)).expect("runs"));
    });
    let baseline = median_secs(3, || {
        black_box(transient::run(&chain, &chain_spec(SolverKind::Reference)).expect("runs"));
    });
    entries.push(Entry {
        name: "transient/inverter_chain_100ps",
        fast_s: fast,
        baseline_s: baseline,
        runs: 5,
    });

    // --- 2. Crossbar-slice DC leakage solve (radix 16).
    println!("measuring crossbar16/dc_slice…");
    let cfg16 = crossbar_16x16_cfg();
    let mut slice = BitSlice::build(Scheme::Sdpc, &cfg16);
    slice.set_grant(0, true);
    slice.set_data(0, true);
    slice.set_enable_far(true);
    let solve = |solver: SolverKind| {
        let opts = NewtonOptions {
            solver,
            max_iterations: 300,
            ..NewtonOptions::default()
        };
        let sol = dc::solve_with(&slice.netlist, &opts, None).expect("dc converges");
        black_box(sol.total_source_power(&slice.netlist));
    };
    let fast = median_secs(7, || solve(SolverKind::Auto));
    let baseline = median_secs(5, || solve(SolverKind::Reference));
    entries.push(Entry {
        name: "crossbar16/dc_slice",
        fast_s: fast,
        baseline_s: baseline,
        runs: 7,
    });

    // --- 3. Full single-corner Table 1 characterization.
    println!("measuring table1_single_corner (fast: parallel + sparse)…");
    let cfg_fast = table1_bench_cfg();
    let fast = median_secs(3, || {
        black_box(Table1::generate(&cfg_fast).expect("pipeline"));
    });
    println!("measuring table1_single_corner (baseline: serial reference)…");
    let cfg_ref = CrossbarConfig {
        solver: SolverKind::Reference,
        ..table1_bench_cfg()
    };
    let baseline = median_secs(1, || {
        black_box(Table1::generate_serial(&cfg_ref).expect("pipeline"));
    });
    entries.push(Entry {
        name: "table1_single_corner",
        fast_s: fast,
        baseline_s: baseline,
        runs: 3,
    });

    // --- Emit JSON (hand-formatted; the offline mini-serde does not
    // serialize).
    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n");
    let _ = writeln!(
        json,
        "  \"note\": \"medians of wall-clock runs, release profile; baseline = SolverKind::Reference (seed dense full-restamp kernel) in this same build\","
    );
    let _ = writeln!(json, "  \"threads\": {},", rayon::current_num_threads());
    json.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"median_s\": {:.6}, \"baseline_median_s\": {:.6}, \"speedup\": {:.2}, \"runs\": {}}}{}",
            e.name,
            e.fast_s,
            e.baseline_s,
            e.baseline_s / e.fast_s,
            e.runs,
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_circuit.json");
    std::fs::write(&path, &json).expect("write BENCH_circuit.json");
    println!("\n{json}");
    println!("wrote {}", path.display());
    for e in &entries {
        println!(
            "{:<34} {:>10.3} ms vs {:>10.3} ms  → {:.2}×",
            e.name,
            e.fast_s * 1e3,
            e.baseline_s * 1e3,
            e.baseline_s / e.fast_s
        );
    }
}
