//! Experiment X2: network-level leakage savings. Runs the mesh
//! simulator across traffic patterns and loads, extracts per-port
//! idle-interval histograms, and evaluates every gating policy with each
//! scheme's gating parameters.
//!
//! Each (pattern, rate) point runs as an isolated job on the
//! supervised [`lnoc_bench::runner`] — its fully rendered text section
//! is cached under the point's canonical config digest, so a killed
//! sweep resumed with `--resume` regenerates `out/x2_noc_sweep.txt`
//! byte-identically without re-simulating completed points.

use lnoc_bench::digest::{mesh_config, DigestBuilder};
use lnoc_bench::runner::{failure_manifest, run_jobs, Job, JobAbort, SweepFlags, FLAGS_HELP};
use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_netsim::{MeshConfig, NetworkStats, SimKernel, Simulation, TrafficPattern};
use lnoc_power::gating::{evaluate_policy, GatingParams, GatingPolicy};
use lnoc_power::report::TextTable;
use lnoc_power::router::RouterPowerModel;
use rayon::prelude::*;

const DIGEST_DOMAIN: &str = "x2.v1";

const USAGE: &str = "\
noc_sweep — X2 network-level gating savings across patterns and loads

Sweep flags:
  --kernel <k>       simulation kernel: auto | active-set | reference |
                     sharded | event (default auto; results are
                     bit-identical across kernels — the flag only picks
                     which engine produces them)
";

/// Parses `--flag value` style arguments.
fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}\n{FLAGS_HELP}");
        return;
    }
    let flags = SweepFlags::parse(&args);
    let kernel = match arg_value(&args, "--kernel") {
        None | Some("auto") => SimKernel::Auto,
        Some("active-set") => SimKernel::ActiveSet,
        Some("reference") => SimKernel::Reference,
        Some("sharded") => SimKernel::Sharded,
        Some("event") => SimKernel::EventDriven,
        Some(other) => {
            panic!("unknown --kernel {other} (auto | active-set | reference | sharded | event)")
        }
    };
    let cfg = CrossbarConfig::paper();
    let ch = Characterizer::new(&cfg);

    // Characterize each scheme once, in parallel.
    let params: Vec<(Scheme, GatingParams)> = Scheme::ALL
        .into_par_iter()
        .map(|scheme| {
            let c = ch.characterize(scheme).expect("characterization");
            let model = RouterPowerModel::from_characterization(&c, &cfg);
            (scheme, model.port_gating_params(cfg.radix))
        })
        .collect();

    let clock = cfg.clock;
    let points: Vec<(TrafficPattern, f64)> = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::Hotspot,
    ]
    .into_iter()
    .flat_map(|pattern| [0.02, 0.05, 0.10].map(|rate| (pattern, rate)))
    .collect();
    let jobs: Vec<Job> = points
        .iter()
        .map(|&(pattern, rate)| {
            let mesh = MeshConfig {
                width: 4,
                height: 4,
                injection_rate: rate,
                pattern,
                packet_len_flits: 4,
                buffer_depth: 4,
                seed: 2005,
                kernel,
                cycle_budget: flags.deadline_cycles,
                ..MeshConfig::default()
            };
            let digest = {
                let mut b = mesh_config(DigestBuilder::new(DIGEST_DOMAIN), &mesh)
                    .field("warmup", 1000u64)
                    .field("measure", 10000u64)
                    .f64("clock_hz", clock.0);
                for (scheme, p) in &params {
                    let key = |f: &str| format!("params.{}.{f}", scheme.name());
                    b = b
                        .f64(&key("p_idle_awake_w"), p.p_idle_awake.0)
                        .f64(&key("p_standby_w"), p.p_standby.0)
                        .f64(&key("e_transition_j"), p.e_transition.0)
                        .field(&key("wake_latency_cycles"), p.wake_latency_cycles);
                }
                b.finish()
            };
            let label = format!("{} @ {rate:.2}", pattern.name());
            let params = params.clone();
            Job::new(label, digest, move || {
                let mut sim = Simulation::new(mesh.clone());
                let stats = sim.try_run(1000, 10000).map_err(JobAbort::from_sim)?;
                let hist = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);

                let mut table = TextTable::new(vec![
                    "scheme".into(),
                    "policy".into(),
                    "saved %".into(),
                    "sleeps".into(),
                ]);
                for (scheme, p) in &params {
                    let threshold = p.min_idle_cycles(clock);
                    for policy in [
                        GatingPolicy::Immediate,
                        GatingPolicy::IdleThreshold(threshold),
                        GatingPolicy::Oracle,
                    ] {
                        let o = evaluate_policy(&hist, p, policy, clock);
                        table.row(vec![
                            scheme.name().into(),
                            policy.to_string(),
                            format!("{:.1}", o.savings_fraction() * 100.0),
                            o.sleep_events.to_string(),
                        ]);
                    }
                }
                let header = format!(
                    "\n== {} @ injection {:.2} — latency {:.1} cy, util {:.3}, {} idle intervals ==",
                    pattern.name(),
                    rate,
                    stats.avg_latency(),
                    stats.crossbar_utilization(),
                    hist.interval_count(),
                );
                Ok(format!("{header}\n{table}"))
            })
        })
        .collect();

    let runner_cfg = flags.runner_config("noc_sweep");
    let report = run_jobs(&runner_cfg, &jobs);
    lnoc_bench::write_artifact("noc_sweep_failures.json", &failure_manifest(&jobs, &report));

    let mut out = String::new();
    for status in &report.statuses {
        if let Some(section) = status.payload() {
            println!("{section}");
            out.push_str(section);
        }
    }
    lnoc_bench::write_artifact("x2_noc_sweep.txt", &out);
    std::process::exit(report.exit_code());
}
