//! Experiment X2: network-level leakage savings. Runs the mesh
//! simulator across traffic patterns and loads, extracts per-port
//! idle-interval histograms, and evaluates every gating policy with each
//! scheme's gating parameters.

use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_netsim::{MeshConfig, NetworkStats, Simulation, TrafficPattern};
use lnoc_power::gating::{evaluate_policy, GatingParams, GatingPolicy};
use lnoc_power::report::TextTable;
use lnoc_power::router::RouterPowerModel;
use rayon::prelude::*;

fn main() {
    let cfg = CrossbarConfig::paper();
    let ch = Characterizer::new(&cfg);

    // Characterize each scheme once, in parallel.
    let params: Vec<(Scheme, GatingParams)> = Scheme::ALL
        .into_par_iter()
        .map(|scheme| {
            let c = ch.characterize(scheme).expect("characterization");
            let model = RouterPowerModel::from_characterization(&c, &cfg);
            (scheme, model.port_gating_params(cfg.radix))
        })
        .collect();

    let mut out = String::new();
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::Hotspot,
    ] {
        for rate in [0.02, 0.05, 0.10] {
            let mut sim = Simulation::new(MeshConfig {
                width: 4,
                height: 4,
                injection_rate: rate,
                pattern,
                packet_len_flits: 4,
                buffer_depth: 4,
                seed: 2005,
                ..MeshConfig::default()
            });
            let stats = sim.run(1000, 10000);
            let hist = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);

            let mut table = TextTable::new(vec![
                "scheme".into(),
                "policy".into(),
                "saved %".into(),
                "sleeps".into(),
            ]);
            for (scheme, p) in &params {
                let threshold = p.min_idle_cycles(cfg.clock);
                for policy in [
                    GatingPolicy::Immediate,
                    GatingPolicy::IdleThreshold(threshold),
                    GatingPolicy::Oracle,
                ] {
                    let o = evaluate_policy(&hist, p, policy, cfg.clock);
                    table.row(vec![
                        scheme.name().into(),
                        policy.to_string(),
                        format!("{:.1}", o.savings_fraction() * 100.0),
                        o.sleep_events.to_string(),
                    ]);
                }
            }
            let header = format!(
                "\n== {} @ injection {:.2} — latency {:.1} cy, util {:.3}, {} idle intervals ==",
                pattern.name(),
                rate,
                stats.avg_latency(),
                stats.crossbar_utilization(),
                hist.interval_count(),
            );
            println!("{header}\n{table}");
            out.push_str(&header);
            out.push('\n');
            out.push_str(&table.to_string());
        }
    }
    lnoc_bench::write_artifact("x2_noc_sweep.txt", &out);
}
