//! Minimal fixed-width text tables for the bench harnesses.

use std::fmt;

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use lnoc_power::report::TextTable;
/// let mut t = TextTable::new(vec!["scheme".into(), "power".into()]);
/// t.row(vec!["SC".into(), "182.81 mW".into()]);
/// let s = t.to_string();
/// assert!(s.contains("SC"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:>width$}  ", width = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: String = widths.iter().map(|w| "-".repeat(*w) + "  ").collect();
        writeln!(f, "{rule}")?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bbb".into()]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.to_string();
        assert!(s.contains("12345"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn empty_reports_no_rows() {
        let t = TextTable::new(vec!["a".into()]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
