//! Power-gating policy evaluation over idle-interval distributions.
//!
//! The paper stops at the circuit-level breakeven (Minimum Idle Time).
//! A router only realizes those savings if its idle intervals are
//! actually longer than the breakeven — which depends on traffic. This
//! module evaluates sleep policies against measured idle-interval
//! histograms (produced by [`lnoc_netsim`]'s router statistics):
//!
//! * [`GatingPolicy::Never`] — baseline, no gating.
//! * [`GatingPolicy::Immediate`] — sleep the moment the port goes idle
//!   (pays the transition penalty on every interval, including losing
//!   ones shorter than the breakeven).
//! * [`GatingPolicy::IdleThreshold`] — sleep after `n` idle cycles
//!   (the paper's implied policy: "while a router will be idle for a
//!   given amount of idle time, the sleep signal is set to HIGH").
//! * [`GatingPolicy::Oracle`] — sleeps from cycle 0 exactly on the
//!   intervals where sleeping wins; upper bound on any policy.

use crate::breakeven::min_idle_cycles;
use lnoc_tech::units::{Hertz, Joules, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scheme-level inputs to gating evaluation, normally derived from a
/// [`lnoc_core::characterize::SchemeCharacterization`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingParams {
    /// Leakage power while idle but awake (W) for the gated block.
    pub p_idle_awake: Watts,
    /// Leakage power in standby (W).
    pub p_standby: Watts,
    /// Energy to enter + exit standby (J).
    pub e_transition: Joules,
    /// Cycles needed to wake before the block can be used again.
    pub wake_latency_cycles: u32,
}

impl GatingParams {
    /// Leakage power saved per second of standby.
    pub fn p_saved(&self) -> Watts {
        Watts(self.p_idle_awake.0 - self.p_standby.0)
    }

    /// The Table 1 minimum idle time at a clock.
    pub fn min_idle_cycles(&self, clock: Hertz) -> u32 {
        min_idle_cycles(self.e_transition, self.p_saved(), clock)
    }
}

/// When to assert the sleep signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatingPolicy {
    /// Never sleep.
    Never,
    /// Sleep as soon as the block idles.
    Immediate,
    /// Sleep after this many consecutive idle cycles.
    IdleThreshold(u32),
    /// Perfect knowledge of interval lengths (upper bound).
    Oracle,
}

impl fmt::Display for GatingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatingPolicy::Never => write!(f, "never"),
            GatingPolicy::Immediate => write!(f, "immediate"),
            GatingPolicy::IdleThreshold(n) => write!(f, "threshold({n})"),
            GatingPolicy::Oracle => write!(f, "oracle"),
        }
    }
}

/// Histogram of idle-interval lengths in cycles.
///
/// Bin `k` counts intervals of exactly `k` cycles (bin 0 unused); a
/// final overflow bin aggregates everything ≥ the configured cap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleHistogram {
    counts: Vec<u64>,
    overflow_len_sum: u64,
}

impl IdleHistogram {
    /// Creates a histogram tracking interval lengths up to `max_len`.
    pub fn new(max_len: usize) -> Self {
        IdleHistogram {
            counts: vec![0; max_len + 1],
            overflow_len_sum: 0,
        }
    }

    /// Records one idle interval of `len` cycles (0-length ignored).
    pub fn record(&mut self, len: u64) {
        if len == 0 {
            return;
        }
        let cap = self.counts.len() as u64 - 1;
        if len >= cap {
            *self.counts.last_mut().expect("non-empty") += 1;
            self.overflow_len_sum += len;
        } else {
            self.counts[len as usize] += 1;
        }
    }

    /// Number of recorded intervals.
    pub fn interval_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total idle cycles across all intervals.
    pub fn total_idle_cycles(&self) -> u64 {
        let cap = self.counts.len() - 1;
        let in_bins: u64 = self
            .counts
            .iter()
            .enumerate()
            .take(cap)
            .map(|(len, &n)| len as u64 * n)
            .sum();
        in_bins + self.overflow_len_sum
    }

    /// Iterates `(interval_length, count)` pairs including the overflow
    /// bin (reported at its average length).
    pub fn iter_lengths(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let cap = self.counts.len() - 1;
        let overflow_n = self.counts[cap];
        let overflow_avg = self.overflow_len_sum.checked_div(overflow_n).unwrap_or(0);
        self.counts
            .iter()
            .enumerate()
            .take(cap)
            .filter(|(_, &n)| n > 0)
            .map(|(len, &n)| (len as u64, n))
            .chain((overflow_n > 0).then_some((overflow_avg, overflow_n)))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bin counts.
    pub fn merge(&mut self, other: &IdleHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow_len_sum += other.overflow_len_sum;
    }
}

/// Result of evaluating a policy against a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingOutcome {
    /// Leakage energy with no gating at all (J).
    pub energy_never: Joules,
    /// Leakage + transition energy under the policy (J).
    pub energy_policy: Joules,
    /// Number of sleep transitions taken.
    pub sleep_events: u64,
    /// Cycles of added wake latency summed over all sleeps.
    pub wake_penalty_cycles: u64,
}

impl GatingOutcome {
    /// Fraction of the no-gating leakage energy that the policy saved.
    pub fn savings_fraction(&self) -> f64 {
        if self.energy_never.0 <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy_policy.0 / self.energy_never.0
    }
}

/// Evaluates a policy against an idle histogram.
pub fn evaluate_policy(
    hist: &IdleHistogram,
    params: &GatingParams,
    policy: GatingPolicy,
    clock: Hertz,
) -> GatingOutcome {
    let t_cycle = 1.0 / clock.0;
    let p_idle = params.p_idle_awake.0;
    let p_standby = params.p_standby.0;
    let e_trans = params.e_transition.0;
    let breakeven = params.min_idle_cycles(clock) as u64;

    let mut energy_never = 0.0;
    let mut energy_policy = 0.0;
    let mut sleep_events = 0u64;
    let mut wake_penalty = 0u64;

    for (len, count) in hist.iter_lengths() {
        let n = count as f64;
        energy_never += n * len as f64 * t_cycle * p_idle;

        // Cycle at which the policy assert sleep, if at all.
        let sleep_at: Option<u64> = match policy {
            GatingPolicy::Never => None,
            GatingPolicy::Immediate => Some(0),
            GatingPolicy::IdleThreshold(th) => (len > th as u64).then_some(th as u64),
            GatingPolicy::Oracle => (len >= breakeven.max(1)).then_some(0),
        };

        match sleep_at {
            None => energy_policy += n * len as f64 * t_cycle * p_idle,
            Some(s) => {
                let awake = s.min(len) as f64;
                let slept = (len - s.min(len)) as f64;
                energy_policy +=
                    n * (awake * t_cycle * p_idle + slept * t_cycle * p_standby + e_trans);
                sleep_events += count;
                wake_penalty += count * params.wake_latency_cycles as u64;
            }
        }
    }

    GatingOutcome {
        energy_never: Joules(energy_never),
        energy_policy: Joules(energy_policy),
        sleep_events,
        wake_penalty_cycles: wake_penalty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GatingParams {
        GatingParams {
            p_idle_awake: Watts(10.0e-6),
            p_standby: Watts(1.0e-6),
            e_transition: Joules(9.0e-15),
            wake_latency_cycles: 1,
        }
    }

    fn clock() -> Hertz {
        Hertz(3.0e9)
    }

    #[test]
    fn histogram_basics() {
        let mut h = IdleHistogram::new(16);
        h.record(3);
        h.record(3);
        h.record(100); // overflow
        h.record(0); // ignored
        assert_eq!(h.interval_count(), 3);
        assert_eq!(h.total_idle_cycles(), 106);
        let lengths: Vec<_> = h.iter_lengths().collect();
        assert!(lengths.contains(&(3, 2)));
        assert!(lengths.contains(&(100, 1)));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IdleHistogram::new(8);
        a.record(2);
        let mut b = IdleHistogram::new(8);
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.interval_count(), 3);
        assert_eq!(a.total_idle_cycles(), 9);
    }

    #[test]
    fn never_policy_saves_nothing() {
        let mut h = IdleHistogram::new(64);
        h.record(10);
        let out = evaluate_policy(&h, &params(), GatingPolicy::Never, clock());
        assert_eq!(out.energy_never, out.energy_policy);
        assert_eq!(out.sleep_events, 0);
        assert!((out.savings_fraction()).abs() < 1e-12);
    }

    #[test]
    fn oracle_never_loses() {
        // Mixture of short (losing) and long (winning) intervals.
        let mut h = IdleHistogram::new(64);
        for _ in 0..100 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(50);
        }
        let p = params();
        let oracle = evaluate_policy(&h, &p, GatingPolicy::Oracle, clock());
        let immediate = evaluate_policy(&h, &p, GatingPolicy::Immediate, clock());
        assert!(oracle.savings_fraction() >= 0.0);
        assert!(oracle.savings_fraction() >= immediate.savings_fraction());
    }

    #[test]
    fn immediate_loses_on_short_intervals() {
        // All intervals shorter than breakeven: immediate gating must
        // cost energy (negative savings).
        let mut h = IdleHistogram::new(16);
        for _ in 0..100 {
            h.record(1);
        }
        let p = params();
        assert!(p.min_idle_cycles(clock()) > 1);
        let out = evaluate_policy(&h, &p, GatingPolicy::Immediate, clock());
        assert!(out.savings_fraction() < 0.0);
    }

    #[test]
    fn threshold_skips_short_intervals() {
        let mut h = IdleHistogram::new(64);
        for _ in 0..100 {
            h.record(2);
        }
        for _ in 0..10 {
            h.record(40);
        }
        let p = params();
        let th = evaluate_policy(&h, &p, GatingPolicy::IdleThreshold(4), clock());
        // Only the 10 long intervals trigger sleep.
        assert_eq!(th.sleep_events, 10);
        assert!(th.savings_fraction() > 0.0);
    }

    #[test]
    fn wake_penalty_counts_events() {
        let mut h = IdleHistogram::new(64);
        for _ in 0..5 {
            h.record(30);
        }
        let out = evaluate_policy(&h, &params(), GatingPolicy::Immediate, clock());
        assert_eq!(out.sleep_events, 5);
        assert_eq!(out.wake_penalty_cycles, 5);
    }

    #[test]
    fn min_idle_cycles_from_params() {
        // 9 fJ / 9 µW = 1 ns = 3 cycles at 3 GHz.
        assert_eq!(params().min_idle_cycles(clock()), 3);
    }
}
