//! Power-gating policy evaluation over idle-interval distributions.
//!
//! The paper stops at the circuit-level breakeven (Minimum Idle Time).
//! A router only realizes those savings if its idle intervals are
//! actually longer than the breakeven — which depends on traffic. This
//! module evaluates sleep policies against measured idle-interval
//! histograms (produced by [`lnoc_netsim`]'s router statistics):
//!
//! * [`GatingPolicy::Never`] — baseline, no gating.
//! * [`GatingPolicy::Immediate`] — sleep the moment the port goes idle
//!   (pays the transition penalty on every interval, including losing
//!   ones shorter than the breakeven).
//! * [`GatingPolicy::IdleThreshold`] — sleep after `n` idle cycles
//!   (the paper's implied policy: "while a router will be idle for a
//!   given amount of idle time, the sleep signal is set to HIGH").
//! * [`GatingPolicy::Oracle`] — sleeps from cycle 0 exactly on the
//!   intervals where sleeping wins; upper bound on any policy.

use crate::breakeven::min_idle_cycles;
use lnoc_tech::units::{Hertz, Joules, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scheme-level inputs to gating evaluation, normally derived from a
/// [`lnoc_core::characterize::SchemeCharacterization`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingParams {
    /// Leakage power while idle but awake (W) for the gated block.
    pub p_idle_awake: Watts,
    /// Leakage power in standby (W).
    pub p_standby: Watts,
    /// Energy to enter + exit standby (J).
    pub e_transition: Joules,
    /// Cycles needed to wake before the block can be used again.
    pub wake_latency_cycles: u32,
}

impl GatingParams {
    /// Leakage power saved per second of standby.
    pub fn p_saved(&self) -> Watts {
        Watts(self.p_idle_awake.0 - self.p_standby.0)
    }

    /// The Table 1 minimum idle time at a clock.
    pub fn min_idle_cycles(&self, clock: Hertz) -> u32 {
        min_idle_cycles(self.e_transition, self.p_saved(), clock)
    }
}

/// When to assert the sleep signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatingPolicy {
    /// Never sleep.
    Never,
    /// Sleep as soon as the block idles.
    Immediate,
    /// Sleep after this many consecutive idle cycles.
    IdleThreshold(u32),
    /// Perfect knowledge of interval lengths (upper bound).
    Oracle,
}

impl fmt::Display for GatingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatingPolicy::Never => write!(f, "never"),
            GatingPolicy::Immediate => write!(f, "immediate"),
            GatingPolicy::IdleThreshold(n) => write!(f, "threshold({n})"),
            GatingPolicy::Oracle => write!(f, "oracle"),
        }
    }
}

/// Histogram of idle-interval lengths in cycles.
///
/// Bin `k` counts intervals of exactly `k` cycles (bin 0 unused); a
/// final overflow bin aggregates everything ≥ the configured cap.
///
/// *Closed* intervals (ended by a wakeup) and *open* intervals (still
/// running when the measurement window closed) are tracked separately:
/// an open interval contributes idle cycles and can be slept through,
/// but it never wakes up, so policies must not charge it a wake
/// penalty. Use [`IdleHistogram::record`] for closed intervals and
/// [`IdleHistogram::record_open`] for trailing open ones.
///
/// The bin array is allocated **lazily on the first recorded
/// interval**: a network simulation keeps five histograms per router,
/// and at the low injection rates the leakage study sweeps most ports
/// record nothing (or only a trailing open run) — eager allocation
/// would cost `routers × 5 × (cap + 1)` zeroed words per run (168 MB
/// for a 32×32 mesh at the default cap) before a single cycle is
/// simulated. Equality compares *contents*, so an unallocated
/// histogram equals an allocated all-zero one of the same cap.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct IdleHistogram {
    /// Configured maximum exactly-binned length.
    cap: usize,
    /// Bin `k` counts intervals of exactly `k` cycles; empty until the
    /// first record, then `cap + 1` entries (last = overflow).
    counts: Vec<u64>,
    overflow_len_sum: u64,
    open_runs: Vec<u64>,
}

impl PartialEq for IdleHistogram {
    fn eq(&self, other: &Self) -> bool {
        // Content equality: missing bins are implicit zeros.
        let zeros = |h: &IdleHistogram| h.counts.iter().all(|&c| c == 0);
        let counts_eq = if self.counts.len() == other.counts.len() {
            self.counts == other.counts
        } else {
            // One side unallocated: equal iff the other is all-zero.
            zeros(self) && zeros(other)
        };
        self.cap == other.cap
            && counts_eq
            && self.overflow_len_sum == other.overflow_len_sum
            && self.open_runs == other.open_runs
    }
}

impl IdleHistogram {
    /// Creates a histogram tracking interval lengths up to `max_len`.
    /// Allocation-free until the first interval is recorded.
    pub fn new(max_len: usize) -> Self {
        IdleHistogram {
            cap: max_len,
            counts: Vec::new(),
            overflow_len_sum: 0,
            open_runs: Vec::new(),
        }
    }

    /// The configured cap (`max_len` passed to [`IdleHistogram::new`]).
    pub fn max_len(&self) -> usize {
        self.cap
    }

    /// Records one idle interval of `len` cycles (0-length ignored).
    pub fn record(&mut self, len: u64) {
        self.record_n(len, 1);
    }

    /// Records `count` idle intervals of `len` cycles each in O(1)
    /// (0-length or 0-count ignored).
    pub fn record_n(&mut self, len: u64, count: u64) {
        if len == 0 || count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; self.cap + 1];
        }
        let cap = self.cap as u64;
        if len >= cap {
            *self.counts.last_mut().expect("non-empty") += count;
            self.overflow_len_sum += len * count;
        } else {
            self.counts[len as usize] += count;
        }
    }

    /// Records an idle interval that was still open when the
    /// measurement window closed (0-length ignored). Open intervals
    /// count toward totals but never pay a wake penalty in
    /// [`evaluate_policy`].
    pub fn record_open(&mut self, len: u64) {
        if len == 0 {
            return;
        }
        self.open_runs.push(len);
    }

    /// Number of recorded intervals (closed + open).
    pub fn interval_count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.open_runs.len() as u64
    }

    /// Total idle cycles across all intervals (closed + open).
    pub fn total_idle_cycles(&self) -> u64 {
        let in_bins: u64 = self
            .counts
            .iter()
            .enumerate()
            .take(self.cap)
            .map(|(len, &n)| len as u64 * n)
            .sum();
        in_bins + self.overflow_len_sum + self.open_runs.iter().sum::<u64>()
    }

    /// Iterates `(interval_length, count)` pairs of the *closed*
    /// intervals, including the overflow bin (reported at its average
    /// length). Open intervals are exposed by
    /// [`IdleHistogram::open_runs`].
    pub fn iter_lengths(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let overflow_n = self.counts.get(self.cap).copied().unwrap_or(0);
        let overflow_avg = self.overflow_len_sum.checked_div(overflow_n).unwrap_or(0);
        self.counts
            .iter()
            .enumerate()
            .take(self.cap)
            .filter(|(_, &n)| n > 0)
            .map(|(len, &n)| (len as u64, n))
            .chain((overflow_n > 0).then_some((overflow_avg, overflow_n)))
    }

    /// Lengths of the intervals that were still open at the end of the
    /// measurement window.
    pub fn open_runs(&self) -> &[u64] {
        &self.open_runs
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bin counts.
    pub fn merge(&mut self, other: &IdleHistogram) {
        assert_eq!(self.cap, other.cap, "bin count mismatch");
        if !other.counts.is_empty() {
            if self.counts.is_empty() {
                self.counts = vec![0; self.cap + 1];
            }
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        }
        self.overflow_len_sum += other.overflow_len_sum;
        self.open_runs.extend_from_slice(&other.open_runs);
    }

    /// Merges another histogram whose cap may differ, preserving
    /// interval counts *and* total idle cycles exactly: `other`'s
    /// overflow bin is re-binned at its average length with the
    /// remainder spread one cycle higher, so no idle cycle is lost to
    /// integer truncation. Equal caps take the bin-wise
    /// [`IdleHistogram::merge`] fast path.
    pub fn merge_rebinned(&mut self, other: &IdleHistogram) {
        if self.cap == other.cap {
            return self.merge(other);
        }
        for (len, &n) in other.counts.iter().enumerate().take(other.cap) {
            self.record_n(len as u64, n);
        }
        let overflow_n = other.counts.get(other.cap).copied().unwrap_or(0);
        if let Some(avg) = other.overflow_len_sum.checked_div(overflow_n) {
            let rem = other.overflow_len_sum - avg * overflow_n;
            self.record_n(avg, overflow_n - rem);
            self.record_n(avg + 1, rem);
        }
        for &len in &other.open_runs {
            self.record_open(len);
        }
    }
}

/// Result of evaluating a policy against a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingOutcome {
    /// Leakage energy with no gating at all (J).
    pub energy_never: Joules,
    /// Leakage + transition energy under the policy (J).
    pub energy_policy: Joules,
    /// Number of sleep transitions taken.
    pub sleep_events: u64,
    /// Cycles of added wake latency summed over all sleeps.
    pub wake_penalty_cycles: u64,
}

impl GatingOutcome {
    /// Fraction of the no-gating leakage energy that the policy saved.
    pub fn savings_fraction(&self) -> f64 {
        if self.energy_never.0 <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy_policy.0 / self.energy_never.0
    }
}

/// Evaluates a policy against an idle histogram.
///
/// Closed intervals that sleep pay a wake penalty of
/// `wake_latency_cycles`; open intervals (still idle when the window
/// closed) sleep by the same rule but never wake, so they pay none.
pub fn evaluate_policy(
    hist: &IdleHistogram,
    params: &GatingParams,
    policy: GatingPolicy,
    clock: Hertz,
) -> GatingOutcome {
    let t_cycle = 1.0 / clock.0;
    let p_idle = params.p_idle_awake.0;
    let p_standby = params.p_standby.0;
    let e_trans = params.e_transition.0;
    let breakeven = params.min_idle_cycles(clock) as u64;

    let mut energy_never = 0.0;
    let mut energy_policy = 0.0;
    let mut sleep_events = 0u64;
    let mut wake_penalty = 0u64;

    // Cycle at which the policy asserts sleep, if at all. The sleep
    // signal goes HIGH the moment the idle counter *reaches* the
    // threshold, so an interval of exactly `th` cycles still sleeps
    // (with zero slept cycles — it pays the transition for nothing).
    let sleep_at = |len: u64| -> Option<u64> {
        match policy {
            GatingPolicy::Never => None,
            GatingPolicy::Immediate => Some(0),
            GatingPolicy::IdleThreshold(th) => (len >= th as u64).then_some(th as u64),
            GatingPolicy::Oracle => (len >= breakeven.max(1)).then_some(0),
        }
    };

    let closed = hist.iter_lengths().map(|(len, count)| (len, count, true));
    let open = hist.open_runs().iter().map(|&len| (len, 1, false));
    for (len, count, wakes) in closed.chain(open) {
        let n = count as f64;
        energy_never += n * len as f64 * t_cycle * p_idle;

        match sleep_at(len) {
            None => energy_policy += n * len as f64 * t_cycle * p_idle,
            Some(s) => {
                let awake = s.min(len) as f64;
                let slept = (len - s.min(len)) as f64;
                energy_policy +=
                    n * (awake * t_cycle * p_idle + slept * t_cycle * p_standby + e_trans);
                sleep_events += count;
                if wakes {
                    wake_penalty += count * params.wake_latency_cycles as u64;
                }
            }
        }
    }

    GatingOutcome {
        energy_never: Joules(energy_never),
        energy_policy: Joules(energy_policy),
        sleep_events,
        wake_penalty_cycles: wake_penalty,
    }
}

/// Per-port (or aggregated) cycle counters produced by an *in-loop*
/// sleep FSM — the simulator-side truth that the offline
/// [`evaluate_policy`] model is validated against.
///
/// Every measured cycle of every gated port lands in exactly one of the
/// four `cycles_*` buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingCounters {
    /// Cycles the port carried a flit.
    pub cycles_busy: u64,
    /// Cycles idle but powered (Active idle + drowsy countdown).
    pub cycles_idle_awake: u64,
    /// Cycles in standby.
    pub cycles_asleep: u64,
    /// Cycles spent waking up (power already at standby level; the
    /// switching overhead is carried by `e_transition`).
    pub cycles_waking: u64,
    /// Sleep-mode entries (each pays one `e_transition`).
    pub sleep_entries: u64,
    /// Cycles a transmittable flit actually stalled behind a wakeup —
    /// the measured latency cost that the offline model can only
    /// estimate.
    pub wake_stall_cycles: u64,
}

impl GatingCounters {
    /// Accumulates another counter set into this one.
    pub fn add(&mut self, other: &GatingCounters) {
        self.cycles_busy += other.cycles_busy;
        self.cycles_idle_awake += other.cycles_idle_awake;
        self.cycles_asleep += other.cycles_asleep;
        self.cycles_waking += other.cycles_waking;
        self.sleep_entries += other.sleep_entries;
        self.wake_stall_cycles += other.wake_stall_cycles;
    }

    /// Total idle cycles (awake + asleep + waking).
    pub fn idle_cycles(&self) -> u64 {
        self.cycles_idle_awake + self.cycles_asleep + self.cycles_waking
    }
}

/// Leakage energy actually spent by an in-loop sleep FSM, from its
/// measured cycle counters.
///
/// Waking cycles are charged at standby power — the block ramps from
/// standby and the switching overhead of the transition is already
/// captured by `e_transition` — which makes this exactly comparable to
/// [`evaluate_policy`] run over the same run's idle histograms.
pub fn energy_from_counters(
    counters: &GatingCounters,
    params: &GatingParams,
    clock: Hertz,
) -> GatingOutcome {
    let t_cycle = 1.0 / clock.0;
    let p_idle = params.p_idle_awake.0;
    let p_standby = params.p_standby.0;
    let slept = (counters.cycles_asleep + counters.cycles_waking) as f64;
    GatingOutcome {
        energy_never: Joules(counters.idle_cycles() as f64 * t_cycle * p_idle),
        energy_policy: Joules(
            counters.cycles_idle_awake as f64 * t_cycle * p_idle
                + slept * t_cycle * p_standby
                + counters.sleep_entries as f64 * params.e_transition.0,
        ),
        sleep_events: counters.sleep_entries,
        wake_penalty_cycles: counters.wake_stall_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GatingParams {
        GatingParams {
            p_idle_awake: Watts(10.0e-6),
            p_standby: Watts(1.0e-6),
            e_transition: Joules(9.0e-15),
            wake_latency_cycles: 1,
        }
    }

    fn clock() -> Hertz {
        Hertz(3.0e9)
    }

    #[test]
    fn histogram_basics() {
        let mut h = IdleHistogram::new(16);
        h.record(3);
        h.record(3);
        h.record(100); // overflow
        h.record(0); // ignored
        assert_eq!(h.interval_count(), 3);
        assert_eq!(h.total_idle_cycles(), 106);
        let lengths: Vec<_> = h.iter_lengths().collect();
        assert!(lengths.contains(&(3, 2)));
        assert!(lengths.contains(&(100, 1)));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IdleHistogram::new(8);
        a.record(2);
        let mut b = IdleHistogram::new(8);
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.interval_count(), 3);
        assert_eq!(a.total_idle_cycles(), 9);
    }

    #[test]
    fn never_policy_saves_nothing() {
        let mut h = IdleHistogram::new(64);
        h.record(10);
        let out = evaluate_policy(&h, &params(), GatingPolicy::Never, clock());
        assert_eq!(out.energy_never, out.energy_policy);
        assert_eq!(out.sleep_events, 0);
        assert!((out.savings_fraction()).abs() < 1e-12);
    }

    #[test]
    fn oracle_never_loses() {
        // Mixture of short (losing) and long (winning) intervals.
        let mut h = IdleHistogram::new(64);
        for _ in 0..100 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(50);
        }
        let p = params();
        let oracle = evaluate_policy(&h, &p, GatingPolicy::Oracle, clock());
        let immediate = evaluate_policy(&h, &p, GatingPolicy::Immediate, clock());
        assert!(oracle.savings_fraction() >= 0.0);
        assert!(oracle.savings_fraction() >= immediate.savings_fraction());
    }

    #[test]
    fn immediate_loses_on_short_intervals() {
        // All intervals shorter than breakeven: immediate gating must
        // cost energy (negative savings).
        let mut h = IdleHistogram::new(16);
        for _ in 0..100 {
            h.record(1);
        }
        let p = params();
        assert!(p.min_idle_cycles(clock()) > 1);
        let out = evaluate_policy(&h, &p, GatingPolicy::Immediate, clock());
        assert!(out.savings_fraction() < 0.0);
    }

    #[test]
    fn threshold_skips_short_intervals() {
        let mut h = IdleHistogram::new(64);
        for _ in 0..100 {
            h.record(2);
        }
        for _ in 0..10 {
            h.record(40);
        }
        let p = params();
        let th = evaluate_policy(&h, &p, GatingPolicy::IdleThreshold(4), clock());
        // Only the 10 long intervals trigger sleep.
        assert_eq!(th.sleep_events, 10);
        assert!(th.savings_fraction() > 0.0);
    }

    #[test]
    fn wake_penalty_counts_events() {
        let mut h = IdleHistogram::new(64);
        for _ in 0..5 {
            h.record(30);
        }
        let out = evaluate_policy(&h, &params(), GatingPolicy::Immediate, clock());
        assert_eq!(out.sleep_events, 5);
        assert_eq!(out.wake_penalty_cycles, 5);
    }

    #[test]
    fn min_idle_cycles_from_params() {
        // 9 fJ / 9 µW = 1 ns = 3 cycles at 3 GHz.
        assert_eq!(params().min_idle_cycles(clock()), 3);
    }

    #[test]
    fn threshold_sleeps_on_exact_interval() {
        // The sleep signal asserts the moment the idle counter reaches
        // the threshold, so an interval of exactly `th` cycles sleeps
        // (th awake cycles, zero slept, one transition + one wake).
        let mut h = IdleHistogram::new(64);
        h.record(4);
        let p = params();
        let out = evaluate_policy(&h, &p, GatingPolicy::IdleThreshold(4), clock());
        assert_eq!(out.sleep_events, 1);
        assert_eq!(out.wake_penalty_cycles, 1);
        let t = 1.0 / clock().0;
        let expect = 4.0 * t * p.p_idle_awake.0 + p.e_transition.0;
        assert!((out.energy_policy.0 - expect).abs() < 1e-24);
        // One cycle shorter must not sleep.
        let mut h3 = IdleHistogram::new(64);
        h3.record(3);
        let out3 = evaluate_policy(&h3, &p, GatingPolicy::IdleThreshold(4), clock());
        assert_eq!(out3.sleep_events, 0);
        assert_eq!(out3.energy_never, out3.energy_policy);
    }

    #[test]
    fn open_intervals_sleep_but_never_wake() {
        let mut h = IdleHistogram::new(64);
        h.record(30); // closed: sleeps and wakes
        h.record_open(30); // open: sleeps, window ends before wakeup
        let p = params();
        let out = evaluate_policy(&h, &p, GatingPolicy::Immediate, clock());
        assert_eq!(out.sleep_events, 2);
        assert_eq!(out.wake_penalty_cycles, 1, "open interval pays no wake");
        assert_eq!(h.interval_count(), 2);
        assert_eq!(h.total_idle_cycles(), 60);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = IdleHistogram::new(32);
        let mut b = IdleHistogram::new(32);
        for (len, n) in [(3u64, 5u64), (31, 2), (100, 4)] {
            a.record_n(len, n);
            for _ in 0..n {
                b.record(len);
            }
        }
        assert_eq!(a, b);
        assert_eq!(a.interval_count(), 11);
        assert_eq!(a.total_idle_cycles(), 3 * 5 + 31 * 2 + 100 * 4);
    }

    #[test]
    fn merge_carries_open_runs() {
        let mut a = IdleHistogram::new(8);
        a.record(2);
        let mut b = IdleHistogram::new(8);
        b.record_open(7);
        a.merge(&b);
        assert_eq!(a.interval_count(), 2);
        assert_eq!(a.total_idle_cycles(), 9);
        assert_eq!(a.open_runs(), &[7]);
    }

    #[test]
    fn counter_energy_matches_hand_calc() {
        let p = params();
        let c = GatingCounters {
            cycles_busy: 100,
            cycles_idle_awake: 40,
            cycles_asleep: 50,
            cycles_waking: 10,
            sleep_entries: 5,
            wake_stall_cycles: 5,
        };
        let out = energy_from_counters(&c, &p, clock());
        let t = 1.0 / clock().0;
        let expect_never = 100.0 * t * p.p_idle_awake.0;
        let expect_policy =
            40.0 * t * p.p_idle_awake.0 + 60.0 * t * p.p_standby.0 + 5.0 * p.e_transition.0;
        assert!((out.energy_never.0 - expect_never).abs() < 1e-24);
        assert!((out.energy_policy.0 - expect_policy).abs() < 1e-24);
        assert_eq!(out.sleep_events, 5);
        assert_eq!(out.wake_penalty_cycles, 5);
    }
}
