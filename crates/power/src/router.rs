//! Orion-style router power model.
//!
//! Rolls a full router's power up from per-event energies: buffer
//! writes/reads, arbitration, crossbar traversals and link traversals,
//! plus leakage for each block. The crossbar component comes straight
//! from a scheme characterization; the other components use documented
//! analytic estimates (they are identical across schemes, so every
//! scheme comparison cancels them out — they exist to keep the totals at
//! router scale).

use crate::gating::GatingParams;
use lnoc_core::characterize::SchemeCharacterization;
use lnoc_core::config::CrossbarConfig;
use lnoc_tech::units::{Hertz, Joules, Watts};
use serde::{Deserialize, Serialize};

/// Per-event energies and per-block leakage of one router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterPowerModel {
    /// Energy per flit written into an input buffer (J).
    pub e_buffer_write: Joules,
    /// Energy per flit read from an input buffer (J).
    pub e_buffer_read: Joules,
    /// Energy per switch arbitration (J).
    pub e_arbitration: Joules,
    /// Energy per flit crossing the crossbar (J).
    pub e_crossbar: Joules,
    /// Energy per flit leaving on an output link (J).
    pub e_link: Joules,
    /// Leakage of all buffers (W).
    pub p_buffer_leak: Watts,
    /// Crossbar leakage when carrying traffic (W).
    pub p_crossbar_active_leak: Watts,
    /// Crossbar leakage when idle but awake (W).
    pub p_crossbar_idle_leak: Watts,
    /// Crossbar leakage in standby (W).
    pub p_crossbar_standby_leak: Watts,
    /// Crossbar standby entry/exit energy, whole crossbar (J).
    pub e_crossbar_transition: Joules,
    /// Leakage of everything else (arbiter, pipeline registers) (W).
    pub p_other_leak: Watts,
    /// Clock frequency the energies were characterized at.
    pub clock: Hertz,
}

impl RouterPowerModel {
    /// Per-VC input buffer depth (flits) the constructor's buffer
    /// leakage estimate assumes — the classic single-FIFO 4-flit bank.
    /// [`RouterPowerModel::with_buffer_geometry`] rescales relative to
    /// this baseline, so the two must stay in lock-step.
    pub const BASELINE_BUFFER_DEPTH_FLITS: usize = 4;

    /// Builds the model from a crossbar characterization.
    ///
    /// Buffer and link numbers follow the usual Orion-style estimates:
    /// an input buffer holds
    /// [`RouterPowerModel::BASELINE_BUFFER_DEPTH_FLITS`] flits of
    /// `flit_bits` SRAM at ~1 fJ/bit per access; a link is one
    /// crossbar-span wire at full swing.
    pub fn from_characterization(ch: &SchemeCharacterization, cfg: &CrossbarConfig) -> Self {
        let bits = cfg.flit_bits as f64;
        let vdd = cfg.vdd().0;
        // One crossbar traversal = every bit slice of one output doing
        // one evaluated cycle.
        let e_crossbar = ch.dynamic_energy_per_cycle.0 * bits;
        // Link: full-span wire + receiver, α = ½ over the flit.
        let c_link = cfg.output_wire().total_capacitance().0 + cfg.c_receiver;
        let e_link = 0.5 * bits * c_link * vdd * vdd;
        // SRAM-style buffer access ≈ 1 fJ/bit in 45 nm.
        let e_access = 1.0e-15 * bits;
        // Buffer leakage: 5 ports × 4 flits of SRAM, ~25 % of the
        // crossbar's SC-level idle leakage in this technology (the paper
        // cites [1] for buffer leakage work; we only need a stable,
        // scheme-independent background).
        let p_buffer_leak = Watts(0.25 * ch.idle_awake_leakage.0.max(1.0e-6));
        RouterPowerModel {
            e_buffer_write: Joules(e_access),
            e_buffer_read: Joules(e_access),
            e_arbitration: Joules(20.0e-15),
            e_crossbar: Joules(e_crossbar),
            e_link: Joules(e_link),
            p_buffer_leak,
            p_crossbar_active_leak: ch.active_leakage,
            p_crossbar_idle_leak: ch.idle_awake_leakage,
            p_crossbar_standby_leak: ch.standby_leakage,
            e_crossbar_transition: Joules(ch.transition_energy.0 * bits),
            p_other_leak: Watts(0.1e-3),
            clock: cfg.clock,
        }
    }

    /// Gating parameters for one crossbar *output port* (1/radix of the
    /// crossbar), as used by per-port sleep controllers (the `vcs = 1`
    /// granularity; crossbar only, no buffer term — kept for
    /// compatibility with the scheme-comparison pipeline).
    pub fn port_gating_params(&self, radix: usize) -> GatingParams {
        let r = radix as f64;
        GatingParams {
            p_idle_awake: Watts(self.p_crossbar_idle_leak.0 / r),
            p_standby: Watts(self.p_crossbar_standby_leak.0 / r),
            e_transition: Joules(self.e_crossbar_transition.0 / r),
            wake_latency_cycles: 1,
        }
    }

    /// Fraction of a VC buffer bank's leakage that survives in drowsy
    /// standby (state-retentive SRAM sleep: the bank must keep its
    /// flits, so it drops to a retention voltage rather than cutting
    /// power entirely).
    pub const BUFFER_DROWSY_RETENTION: f64 = 0.1;

    /// Rescales the buffer-leakage term for a router with `vcs` virtual
    /// channels of `depth_per_vc` flits each per port, relative to the
    /// constructor's
    /// [`RouterPowerModel::BASELINE_BUFFER_DEPTH_FLITS`]-flit
    /// single-FIFO baseline. Total buffer storage — and hence buffer
    /// leakage — grows linearly with `vcs · depth`: VCs add state,
    /// which is exactly why gating them individually matters.
    ///
    /// The rescale is relative, not absolute: call it **once**, on a
    /// freshly constructed model (calling it twice compounds the
    /// factor).
    pub fn with_buffer_geometry(mut self, vcs: usize, depth_per_vc: usize) -> Self {
        self.p_buffer_leak = Watts(
            self.p_buffer_leak.0 * (vcs * depth_per_vc) as f64
                / Self::BASELINE_BUFFER_DEPTH_FLITS as f64,
        );
        self
    }

    /// Leakage of one input-VC buffer bank — one of the `radix · vcs`
    /// independently gateable banks the buffer leakage splits into.
    pub fn vc_bank_leak(&self, radix: usize, vcs: usize) -> Watts {
        Watts(self.p_buffer_leak.0 / (radix * vcs) as f64)
    }

    /// Gating parameters for one output **VC lane** — the granularity
    /// the in-loop sleep FSMs actually run at: a `1/vcs` share of one
    /// crossbar output port *plus* the downstream input-VC buffer bank
    /// that lane writes into.
    ///
    /// * Idle-awake power: crossbar share + the full bank leakage.
    /// * Standby: the crossbar share drops to its characterized standby
    ///   level; the bank retains state at
    ///   [`RouterPowerModel::BUFFER_DROWSY_RETENTION`] of its leakage.
    /// * Transition energy: the crossbar share's transition, scaled up
    ///   by the bank's share of the gated leakage (the sleep transistor
    ///   sizing — and so the switching energy — tracks the leakage of
    ///   the block it gates).
    ///
    /// Summed over a port's `vcs` lanes this is strictly more gateable
    /// leakage than [`RouterPowerModel::port_gating_params`] covers
    /// (the buffers join the crossbar under the gate), while each
    /// individual lane's transition cost shrinks — the granularity
    /// trade the gating sweep's VC dimension measures.
    pub fn vc_lane_gating_params(&self, radix: usize, vcs: usize) -> GatingParams {
        let share = (radix * vcs) as f64;
        let p_xbar_idle = self.p_crossbar_idle_leak.0 / share;
        let p_bank = self.p_buffer_leak.0 / share;
        let e_xbar_trans = self.e_crossbar_transition.0 / share;
        GatingParams {
            p_idle_awake: Watts(p_xbar_idle + p_bank),
            p_standby: Watts(
                self.p_crossbar_standby_leak.0 / share + Self::BUFFER_DROWSY_RETENTION * p_bank,
            ),
            e_transition: Joules(e_xbar_trans * (1.0 + p_bank / p_xbar_idle.max(1e-30))),
            wake_latency_cycles: 1,
        }
    }
}

/// Activity counters accumulated by a router over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RouterActivity {
    /// Simulated cycles.
    pub cycles: u64,
    /// Flits written into input buffers.
    pub buffer_writes: u64,
    /// Flits read out of input buffers.
    pub buffer_reads: u64,
    /// Switch arbitrations performed.
    pub arbitrations: u64,
    /// Flits that crossed the crossbar.
    pub crossbar_traversals: u64,
    /// Flits sent on output links.
    pub link_traversals: u64,
}

impl RouterActivity {
    /// Accumulates another activity record into this one (used when
    /// merging per-shard statistics of a partitioned simulation).
    pub fn add(&mut self, other: &RouterActivity) {
        self.cycles += other.cycles;
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.arbitrations += other.arbitrations;
        self.crossbar_traversals += other.crossbar_traversals;
        self.link_traversals += other.link_traversals;
    }
}

/// Power breakdown of one router under a given activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterPowerBreakdown {
    /// Buffer dynamic power (W).
    pub buffers: Watts,
    /// Arbiter dynamic power (W).
    pub arbiter: Watts,
    /// Crossbar dynamic power (W).
    pub crossbar_dynamic: Watts,
    /// Crossbar leakage power (W), activity-weighted.
    pub crossbar_leakage: Watts,
    /// Link dynamic power (W).
    pub links: Watts,
    /// Everything-else leakage (W).
    pub other_leakage: Watts,
}

impl RouterPowerBreakdown {
    /// Total router power.
    pub fn total(&self) -> Watts {
        Watts(
            self.buffers.0
                + self.arbiter.0
                + self.crossbar_dynamic.0
                + self.crossbar_leakage.0
                + self.links.0
                + self.other_leakage.0,
        )
    }
}

impl RouterPowerModel {
    /// Computes the average power of a router with the given activity.
    ///
    /// The crossbar leakage is utilization-weighted between its active
    /// and idle-awake levels (gating savings are evaluated separately by
    /// [`crate::gating::evaluate_policy`]).
    pub fn power(&self, activity: &RouterActivity) -> RouterPowerBreakdown {
        if activity.cycles == 0 {
            return RouterPowerBreakdown {
                buffers: Watts(0.0),
                arbiter: Watts(0.0),
                crossbar_dynamic: Watts(0.0),
                crossbar_leakage: Watts(0.0),
                links: Watts(0.0),
                other_leakage: self.p_other_leak,
            };
        }
        let t_total = activity.cycles as f64 / self.clock.0;
        let per = |events: u64, e: Joules| Watts(events as f64 * e.0 / t_total);
        let utilization =
            (activity.crossbar_traversals as f64 / activity.cycles as f64).clamp(0.0, 1.0);
        RouterPowerBreakdown {
            buffers: Watts(
                per(activity.buffer_writes, self.e_buffer_write).0
                    + per(activity.buffer_reads, self.e_buffer_read).0
                    + self.p_buffer_leak.0,
            ),
            arbiter: per(activity.arbitrations, self.e_arbitration),
            crossbar_dynamic: per(activity.crossbar_traversals, self.e_crossbar),
            crossbar_leakage: Watts(
                utilization * self.p_crossbar_active_leak.0
                    + (1.0 - utilization) * self.p_crossbar_idle_leak.0,
            ),
            links: per(activity.link_traversals, self.e_link),
            other_leakage: self.p_other_leak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RouterPowerModel {
        RouterPowerModel {
            e_buffer_write: Joules(128.0e-15),
            e_buffer_read: Joules(128.0e-15),
            e_arbitration: Joules(20.0e-15),
            e_crossbar: Joules(5.0e-12),
            e_link: Joules(3.0e-12),
            p_buffer_leak: Watts(1.0e-3),
            p_crossbar_active_leak: Watts(4.0e-3),
            p_crossbar_idle_leak: Watts(3.0e-3),
            p_crossbar_standby_leak: Watts(0.5e-3),
            e_crossbar_transition: Joules(5.0e-12),
            p_other_leak: Watts(0.1e-3),
            clock: Hertz(3.0e9),
        }
    }

    #[test]
    fn zero_activity_is_leakage_only() {
        let p = model().power(&RouterActivity::default());
        assert_eq!(p.crossbar_dynamic.0, 0.0);
        assert!(p.total().0 > 0.0);
    }

    #[test]
    fn busier_router_burns_more() {
        let m = model();
        let quiet = m.power(&RouterActivity {
            cycles: 1000,
            crossbar_traversals: 10,
            buffer_writes: 10,
            buffer_reads: 10,
            arbitrations: 10,
            link_traversals: 10,
        });
        let busy = m.power(&RouterActivity {
            cycles: 1000,
            crossbar_traversals: 800,
            buffer_writes: 800,
            buffer_reads: 800,
            arbitrations: 800,
            link_traversals: 800,
        });
        assert!(busy.total().0 > quiet.total().0);
        assert!(busy.crossbar_dynamic.0 > 10.0 * quiet.crossbar_dynamic.0);
    }

    #[test]
    fn leakage_interpolates_with_utilization() {
        let m = model();
        let idle = m.power(&RouterActivity {
            cycles: 1000,
            ..Default::default()
        });
        assert!((idle.crossbar_leakage.0 - 3.0e-3).abs() < 1e-9);
        let full = m.power(&RouterActivity {
            cycles: 1000,
            crossbar_traversals: 1000,
            ..Default::default()
        });
        assert!((full.crossbar_leakage.0 - 4.0e-3).abs() < 1e-9);
    }

    #[test]
    fn port_gating_params_divide_by_radix() {
        let g = model().port_gating_params(5);
        assert!((g.p_idle_awake.0 - 3.0e-3 / 5.0).abs() < 1e-12);
        assert!((g.e_transition.0 - 1.0e-12).abs() < 1e-18);
    }

    #[test]
    fn buffer_geometry_scales_leakage_linearly() {
        let m = model();
        let base = m.p_buffer_leak.0;
        let two_vc = m.clone().with_buffer_geometry(2, 4);
        assert!((two_vc.p_buffer_leak.0 - 2.0 * base).abs() < 1e-15);
        let half_depth = m.clone().with_buffer_geometry(1, 2);
        assert!((half_depth.p_buffer_leak.0 - 0.5 * base).abs() < 1e-15);
        // vcs=1 × depth=4 is the constructor's own geometry: identity.
        let same = m.clone().with_buffer_geometry(1, 4);
        assert_eq!(same.p_buffer_leak, m.p_buffer_leak);
    }

    #[test]
    fn vc_lane_params_split_a_port_and_add_the_bank() {
        let m = model().with_buffer_geometry(2, 4);
        let lane = m.vc_lane_gating_params(5, 2);
        let port = m.port_gating_params(5);
        // Per-lane idle leakage: half the port's crossbar share plus
        // one of the ten buffer banks.
        let expect_idle = port.p_idle_awake.0 / 2.0 + m.vc_bank_leak(5, 2).0;
        assert!((lane.p_idle_awake.0 - expect_idle).abs() < 1e-15);
        // Finer granularity: each lane's transition is cheaper than the
        // whole port's, even with the bank surcharge.
        assert!(lane.e_transition.0 < port.e_transition.0);
        // Standby still saves leakage (drowsy retention < 1).
        assert!(lane.p_standby.0 < lane.p_idle_awake.0);
        // Two lanes cover strictly more gateable leakage than the
        // buffer-less port-level model.
        assert!(2.0 * lane.p_idle_awake.0 > port.p_idle_awake.0);
    }

    #[test]
    fn breakdown_total_adds_up() {
        let m = model();
        let p = m.power(&RouterActivity {
            cycles: 100,
            crossbar_traversals: 50,
            buffer_writes: 50,
            buffer_reads: 50,
            arbitrations: 60,
            link_traversals: 50,
        });
        let sum = p.buffers.0
            + p.arbiter.0
            + p.crossbar_dynamic.0
            + p.crossbar_leakage.0
            + p.links.0
            + p.other_leakage.0;
        assert!((p.total().0 - sum).abs() < 1e-15);
    }
}
