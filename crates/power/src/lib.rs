//! # lnoc-power — power accounting and power-gating policies
//!
//! Builds on the circuit-level characterizations of [`lnoc_core`] to
//! answer the system-level questions the paper raises but does not
//! evaluate: *given a scheme's standby savings, transition energy and
//! minimum idle time, how much leakage does a router actually save under
//! real idle-interval distributions?*
//!
//! * [`breakeven`] — the minimum-idle-time arithmetic of Table 1 as a
//!   reusable function of clock frequency (experiment X1).
//! * [`gating`] — sleep policies (never / immediate / idle-threshold /
//!   oracle) evaluated against idle-interval histograms.
//! * [`router`] — an Orion-style router power model with the crossbar
//!   component supplied by a scheme characterization.
//! * [`report`] — small fixed-width text tables for the bench harnesses.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod breakeven;
pub mod gating;
pub mod report;
pub mod router;

pub use breakeven::{breakeven_curve, min_idle_cycles};
pub use gating::{GatingOutcome, GatingParams, GatingPolicy, IdleHistogram};
pub use router::{RouterActivity, RouterPowerBreakdown, RouterPowerModel};
