//! Breakeven (minimum idle time) arithmetic.
//!
//! Table 1 defines *Minimum Idle Time* as "the minimum amount of time
//! that a circuit stays in idle so that the leakage saved in standby
//! mode is more than the switching power penalty". This module exposes
//! that arithmetic as plain functions so the bench harness can sweep it
//! over clock frequency (experiment X1) and so the gating policies can
//! derive their thresholds.

use lnoc_tech::units::{Hertz, Joules, Seconds, Watts};

/// Minimum number of whole clock cycles a standby period must last to
/// recoup `e_transition`, given the leakage power saved while slept.
///
/// Returns `u32::MAX` when the savings rate is not positive.
pub fn min_idle_cycles(e_transition: Joules, p_saved: Watts, clock: Hertz) -> u32 {
    if p_saved.0 <= 0.0 || e_transition.0 < 0.0 {
        return u32::MAX;
    }
    let breakeven_seconds = e_transition.0 / p_saved.0;
    (breakeven_seconds * clock.0).ceil() as u32
}

/// Breakeven time as a duration rather than cycles.
pub fn breakeven_time(e_transition: Joules, p_saved: Watts) -> Option<Seconds> {
    (p_saved.0 > 0.0).then(|| Seconds(e_transition.0 / p_saved.0))
}

/// Sweeps [`min_idle_cycles`] across clock frequencies.
pub fn breakeven_curve(
    e_transition: Joules,
    p_saved: Watts,
    clocks: &[Hertz],
) -> Vec<(Hertz, u32)> {
    clocks
        .iter()
        .map(|&f| (f, min_idle_cycles(e_transition, p_saved, f)))
        .collect()
}

/// Net energy saved (signed) by sleeping through an idle interval of
/// `interval_cycles`, instead of idling awake.
pub fn net_saving(
    e_transition: Joules,
    p_saved: Watts,
    interval_cycles: u64,
    clock: Hertz,
) -> Joules {
    let idle_time = interval_cycles as f64 / clock.0;
    Joules(p_saved.0 * idle_time - e_transition.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakeven_matches_hand_calculation() {
        // 10 fJ penalty, 10 µW saved → 1 ns breakeven → 3 cycles at 3 GHz.
        let cycles = min_idle_cycles(Joules(10.0e-15), Watts(10.0e-6), Hertz(3.0e9));
        assert_eq!(cycles, 3);
    }

    #[test]
    fn zero_savings_never_breaks_even() {
        assert_eq!(
            min_idle_cycles(Joules(1.0e-15), Watts(0.0), Hertz(3.0e9)),
            u32::MAX
        );
        assert!(breakeven_time(Joules(1.0e-15), Watts(-1.0)).is_none());
    }

    #[test]
    fn higher_clock_means_more_cycles() {
        let slow = min_idle_cycles(Joules(10.0e-15), Watts(5.0e-6), Hertz(1.0e9));
        let fast = min_idle_cycles(Joules(10.0e-15), Watts(5.0e-6), Hertz(5.0e9));
        assert!(fast > slow);
    }

    #[test]
    fn curve_covers_all_clocks() {
        let clocks = [Hertz(1.0e9), Hertz(2.0e9), Hertz(3.0e9)];
        let curve = breakeven_curve(Joules(5.0e-15), Watts(5.0e-6), &clocks);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn net_saving_sign_flips_at_breakeven() {
        let e = Joules(10.0e-15);
        let p = Watts(10.0e-6);
        let clock = Hertz(3.0e9);
        // Breakeven at 3 cycles: 2 cycles loses, 4 gains.
        assert!(net_saving(e, p, 2, clock).0 < 0.0);
        assert!(net_saving(e, p, 4, clock).0 > 0.0);
    }
}
