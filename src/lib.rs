//! # leakage-noc — facade crate
//!
//! Reproduction of *"Leakage-Aware Interconnect for On-Chip Network"*
//! (Tsai, Narayanan, Xie, Irwin — DATE 2005). This crate re-exports the
//! workspace members under one roof:
//!
//! * [`tech`] — 45 nm device and interconnect models,
//! * [`circuit`] — the MNA circuit simulator,
//! * [`core`] — the paper's crossbar schemes and the Table 1 pipeline,
//! * [`power`] — power accounting and power-gating policies,
//! * [`netsim`] — the flit-level NoC simulator.
//!
//! See the repository `README.md` for a guided tour and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![deny(unsafe_code)]

pub use lnoc_circuit as circuit;
pub use lnoc_core as core;
pub use lnoc_netsim as netsim;
pub use lnoc_power as power;
pub use lnoc_tech as tech;
