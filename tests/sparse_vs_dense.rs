//! Property tests pitting the sparse solve path against the dense LU
//! oracle: on random diagonally-dominant systems, and on real
//! crossbar-slice MNA Jacobians captured from the characterization
//! pipeline's operating states. Agreement bound: 1e-9 (relative to the
//! solution norm) per the engine's acceptance criterion.

use leakage_noc::circuit::assemble::Assembler;
use leakage_noc::circuit::dc::{self, NewtonOptions, SolverKind};
use leakage_noc::circuit::linear::norm_inf;
use leakage_noc::circuit::sparse::{CscPattern, SparseLu};
use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::core::slice::BitSlice;
use proptest::prelude::*;

/// Solves the same system through both kernels and checks agreement.
fn assert_solvers_agree(pattern: &CscPattern, values: &[f64], b: &[f64], context: &str) {
    let n = pattern.dim();
    let mut dense = pattern.to_dense(values);
    let mut x_dense = b.to_vec();
    dense
        .solve_in_place(&mut x_dense)
        .unwrap_or_else(|e| panic!("{context}: dense solve failed: {e}"));

    let mut lu = SparseLu::new(n);
    lu.factorize(pattern, values)
        .unwrap_or_else(|e| panic!("{context}: sparse factorize failed: {e}"));
    let mut x_sparse = b.to_vec();
    lu.solve_in_place(&mut x_sparse);

    let scale = norm_inf(&x_dense).max(1.0);
    for (i, (d, s)) in x_dense.iter().zip(&x_sparse).enumerate() {
        assert!(
            (d - s).abs() <= 1e-9 * scale,
            "{context}: x[{i}] dense {d:e} vs sparse {s:e} (scale {scale:e})"
        );
    }

    // Refactorization must reproduce the factorization's solution.
    lu.refactorize(pattern, values)
        .unwrap_or_else(|e| panic!("{context}: refactorize failed: {e}"));
    let mut x_refac = b.to_vec();
    lu.solve_in_place(&mut x_refac);
    for (i, (d, s)) in x_dense.iter().zip(&x_refac).enumerate() {
        assert!(
            (d - s).abs() <= 1e-9 * scale,
            "{context}: refactorized x[{i}] dense {d:e} vs sparse {s:e}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random banded diagonally-dominant systems: sparse == dense to 1e-9.
    #[test]
    fn random_diagonally_dominant_systems_agree(
        off_vals in proptest::collection::vec(-1.0f64..1.0, 200),
        diag_vals in proptest::collection::vec(0.0f64..4.0, 40),
        rhs in proptest::collection::vec(-10.0f64..10.0, 40),
    ) {
        let n = 40;
        let mut positions = Vec::new();
        for i in 0..n {
            positions.push((i, i));
            for d in 1..4usize {
                if i + d < n {
                    positions.push((i, i + d));
                    positions.push((i + d, i));
                }
            }
        }
        let pattern = CscPattern::from_positions(n, &positions);
        let mut values = vec![0.0; pattern.nnz()];
        let mut next_off = 0;
        for (col, &diag) in diag_vals.iter().enumerate() {
            for k in pattern.col_range(col) {
                let row = pattern.col_rows(col)[k - pattern.col_range(col).start];
                values[k] = if row == col {
                    // Strictly dominant: |diag| > sum of up to 6 off-diagonal
                    // entries, each < 1.
                    7.0 + diag
                } else {
                    let v = off_vals[next_off % off_vals.len()];
                    next_off += 1;
                    v
                };
            }
        }
        assert_solvers_agree(&pattern, &values, &rhs, "random system");
    }
}

/// Captures the MNA system of one slice state at its DC operating point
/// and checks solver agreement on the Newton step. `transfer_data` is the
/// transferred bit of a far-path transfer state, or `None` for the
/// idle-awake state — the same states the characterization pipeline
/// enumerates.
fn check_slice_jacobian(scheme: Scheme, transfer_data: Option<bool>) {
    let cfg = CrossbarConfig {
        flit_bits: 32,
        ..CrossbarConfig::paper()
    };
    let mut slice = BitSlice::build(scheme, &cfg);
    match transfer_data {
        None => {
            // Idle awake: both segments bridged, nothing granted.
            if scheme.is_segmented() {
                slice.set_enable_far(true);
                slice.set_enable_near(true);
            }
            if scheme.is_precharged() {
                slice.set_precharge(true);
            }
        }
        Some(data) => {
            // Far transfer (the pipeline's worst-case path state).
            let input = if scheme.is_segmented() {
                slice.set_enable_far(true);
                slice.set_enable_near(false);
                slice.set_sleep_slack(true);
                slice.crit_inputs[0]
            } else {
                slice.input_count() - 1
            };
            slice.set_grant(input, true);
            slice.set_data(input, data);
            if scheme.is_precharged() {
                // Pre-charge pins A only when it agrees with the data
                // (an active pre-charge against a 0-evaluation is a
                // contention state with no physical DC meaning).
                slice.set_precharge_main(data);
            }
        }
    }
    let nl = &slice.netlist;

    // A realistic linearization point: the converged operating point.
    let opts = NewtonOptions {
        max_iterations: 300,
        ..NewtonOptions::default()
    };
    let sol = dc::solve_with(nl, &opts, None)
        .unwrap_or_else(|e| panic!("{scheme} {transfer_data:?}: slice DC did not converge: {e}"));
    let mut x: Vec<f64> = Vec::new();
    x.extend_from_slice(&sol.voltages()[1..]);
    for k in 0..nl.vsource_count() {
        x.push(sol.branch_current(k));
    }

    // Assemble the real Jacobian (small gmin keeps pre-charged nodes
    // conditioned, as the characterization pipeline does mid-ladder) and
    // pit the solvers against each other on the Newton-step system.
    let mut asm = Assembler::new(nl);
    asm.set_linear_state(1.0e-9, None);
    asm.prepare_rhs(0.0, 1.0, None);
    asm.assemble(&x);
    let b: Vec<f64> = asm.residual().iter().map(|r| -r).collect();
    assert_solvers_agree(
        asm.pattern(),
        asm.values(),
        &b,
        &format!("{scheme} slice Jacobian"),
    );
}

#[test]
fn crossbar_slice_jacobians_agree_across_schemes() {
    for scheme in Scheme::ALL {
        check_slice_jacobian(scheme, None);
        check_slice_jacobian(scheme, Some(true));
        check_slice_jacobian(scheme, Some(false));
    }
}

#[test]
fn radix16_slice_jacobian_agrees() {
    // The scaled-up router case the benches measure.
    let cfg = CrossbarConfig {
        radix: 16,
        flit_bits: 64,
        ..CrossbarConfig::paper()
    };
    let mut slice = BitSlice::build(Scheme::Dpc, &cfg);
    slice.set_grant(10, true);
    slice.set_data(10, true);
    let nl = &slice.netlist;
    let dim = (nl.node_count() - 1) + nl.vsource_count();
    // A mid-rail guess exercises the exponential device models away from
    // converged equilibrium.
    let x: Vec<f64> = (0..dim).map(|i| 0.4 + 0.01 * (i % 7) as f64).collect();
    let mut asm = Assembler::new(nl);
    asm.set_linear_state(1.0e-6, None);
    asm.prepare_rhs(0.0, 1.0, None);
    asm.assemble(&x);
    let b: Vec<f64> = asm.residual().iter().map(|r| -r).collect();
    assert_solvers_agree(asm.pattern(), asm.values(), &b, "radix-16 DPC Jacobian");
}

#[test]
fn full_dc_solutions_agree_across_engines() {
    // End-to-end: the three fast engines and the reference kernel must
    // land on the same operating point (within Newton tolerance).
    let cfg = CrossbarConfig {
        flit_bits: 32,
        ..CrossbarConfig::paper()
    };
    for scheme in [Scheme::Sc, Scheme::Dfc, Scheme::Sdpc] {
        let mut slice = BitSlice::build(scheme, &cfg);
        if scheme.is_segmented() {
            slice.set_enable_far(true);
            slice.set_enable_near(true);
        }
        slice.set_grant(slice.input_count() - 1, true);
        slice.set_data(slice.input_count() - 1, true);
        let solve = |solver: SolverKind| {
            let opts = NewtonOptions {
                solver,
                max_iterations: 300,
                ..NewtonOptions::default()
            };
            dc::solve_with(&slice.netlist, &opts, None).expect("converges")
        };
        let reference = solve(SolverKind::Reference);
        for kind in [SolverKind::Auto, SolverKind::Dense, SolverKind::Sparse] {
            let fast = solve(kind);
            for (node, _) in slice.netlist.nodes() {
                let (a, b) = (reference.voltage(node), fast.voltage(node));
                assert!(
                    (a - b).abs() < 1.0e-6,
                    "{scheme} {kind:?}: node {node} {a} vs {b}"
                );
            }
        }
    }
}
