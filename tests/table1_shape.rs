//! Integration test: the Table 1 *shape* assertions at a reduced
//! configuration — who wins, in which direction, and by roughly what
//! kind of factor. Absolute values are compared against the paper in
//! EXPERIMENTS.md; these tests pin the orderings that constitute the
//! paper's conclusions.

use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::core::table1::Table1;

fn fast_cfg() -> CrossbarConfig {
    CrossbarConfig {
        flit_bits: 32,
        sim_dt: 0.5e-12,
        ..CrossbarConfig::paper()
    }
}

#[test]
fn table1_shape_holds() {
    let t = Table1::generate(&fast_cfg()).expect("pipeline");

    let row = |s: Scheme| t.row(s).expect("all schemes present");
    let (sc, dfc, dpc, sdfc, sdpc) = (
        row(Scheme::Sc),
        row(Scheme::Dfc),
        row(Scheme::Dpc),
        row(Scheme::Sdfc),
        row(Scheme::Sdpc),
    );

    // --- savings rows: every scheme saves, orderings as published ----
    for r in [dfc, dpc, sdfc, sdpc] {
        assert!(
            r.active_leakage_savings.unwrap() > 0.0,
            "{}: active savings must be positive",
            r.scheme
        );
        assert!(
            r.standby_leakage_savings.unwrap() > 0.0,
            "{}: standby savings must be positive",
            r.scheme
        );
    }
    // DFC saves least; SDPC saves most (paper: 10.13 % … 63.57 %).
    assert!(dfc.active_leakage_savings < dpc.active_leakage_savings);
    assert!(dfc.active_leakage_savings < sdfc.active_leakage_savings);
    assert!(sdpc.active_leakage_savings > dpc.active_leakage_savings);
    assert!(sdpc.active_leakage_savings > sdfc.active_leakage_savings);

    // Pre-charged schemes dominate standby savings (93.7 %/96 % vs
    // 12.4 %/43.9 % in the paper).
    assert!(
        dpc.standby_leakage_savings.unwrap() > 2.0 * dfc.standby_leakage_savings.unwrap(),
        "DPC standby {} vs DFC {}",
        dpc.standby_leakage_savings.unwrap(),
        dfc.standby_leakage_savings.unwrap()
    );
    assert!(sdpc.standby_leakage_savings.unwrap() > sdfc.standby_leakage_savings.unwrap());

    // --- delay rows ---------------------------------------------------
    // DFC's signature asymmetry: faster falling, slower rising than SC.
    assert!(dfc.delay_high_to_low_ps < sc.delay_high_to_low_ps);
    assert!(dfc.delay_low_to_high_ps > sc.delay_low_to_high_ps);
    // All delays land in the ps regime (this reduced configuration has
    // quarter-length wires, so the floor sits below the paper-scale
    // tens-of-ps numbers checked in EXPERIMENTS.md).
    for r in &t.rows {
        assert!(
            (3.0..200.0).contains(&r.delay_high_to_low_ps),
            "{}: H→L {} ps",
            r.scheme,
            r.delay_high_to_low_ps
        );
        assert!(
            (3.0..200.0).contains(&r.delay_low_to_high_ps),
            "{}: L→H {} ps",
            r.scheme,
            r.delay_low_to_high_ps
        );
    }
    // Delay penalties stay bounded. (Paper scale: ≤ 4.69 %. At this
    // reduced scale the wires shrink 4× but the segment-isolation
    // devices do not, so the segmented schemes' relative penalty is
    // larger than at paper scale — see EXPERIMENTS.md for the
    // full-configuration numbers.)
    for r in &t.rows {
        assert!(
            r.delay_penalty.unwrap_or(0.0) < 0.25,
            "{}: penalty {:?}",
            r.scheme,
            r.delay_penalty
        );
    }

    // --- minimum idle time: pre-charged schemes break even faster ----
    assert!(dpc.min_idle_time_cycles <= dfc.min_idle_time_cycles);
    assert!(dpc.min_idle_time_cycles <= sc.min_idle_time_cycles);
    assert!(sdpc.min_idle_time_cycles <= sc.min_idle_time_cycles);

    // --- total power: every proposal beats the baseline; the segmented
    //     feedback design is the overall winner (paper: SDFC 122 mW).
    for r in [dfc, dpc, sdfc, sdpc] {
        assert!(
            r.total_power_mw < sc.total_power_mw,
            "{}: {} mW vs SC {} mW",
            r.scheme,
            r.total_power_mw,
            sc.total_power_mw
        );
    }
    assert!(
        sdfc.total_power_mw < dpc.total_power_mw,
        "segmentation's dynamic savings beat pure dual-Vt"
    );
}

#[test]
fn segmentation_reduces_remaining_leakage() {
    // §3: "the leakage power is further reduced by 20% and 30% in SDFC
    // and SDPC" — sign and rough scale.
    let t = Table1::generate(&fast_cfg()).expect("pipeline");
    let (g_sdfc, g_sdpc) = t.segmentation_gains();
    assert!(g_sdfc > 0.05, "SDFC gain over DFC: {g_sdfc}");
    assert!(g_sdpc > 0.05, "SDPC gain over DPC: {g_sdpc}");
}
