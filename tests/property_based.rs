//! Property-based tests on the cross-crate invariants.

use leakage_noc::circuit::dc;
use leakage_noc::circuit::linear::Matrix;
use leakage_noc::circuit::netlist::Netlist;
use leakage_noc::circuit::stimulus::Stimulus;
use leakage_noc::circuit::waveform::{Edge, Waveform};
use leakage_noc::netsim::{
    GapSampler, InjectionProcess, MeshConfig, NetworkStats, Simulation, SleepConfig, TrafficPattern,
};
use leakage_noc::power::breakeven::{min_idle_cycles, net_saving};
use leakage_noc::power::gating::{
    energy_from_counters, evaluate_policy, GatingParams, GatingPolicy, IdleHistogram,
};
use leakage_noc::tech::device::{Polarity, VtClass};
use leakage_noc::tech::node45::Node45;
use leakage_noc::tech::units::{Hertz, Joules, Watts};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One cycle of injection-source state advancement, written
/// independently of `InjectionProcess::next_arrival`: a bursty source
/// makes its per-cycle flip and offer draws, a Bernoulli source
/// compares the cycle against its renewal slot (catching up offers
/// missed while unscanned). Returns whether the source offers; the
/// caller re-arms after a hit via `rearm_after_offer`.
#[allow(clippy::too_many_arguments)]
fn oracle_tick(
    process: InjectionProcess,
    rate: f64,
    on: &mut bool,
    next_offer: &mut u64,
    gap: &GapSampler,
    rng: &mut StdRng,
    cycle: u64,
) -> bool {
    match process {
        InjectionProcess::Bernoulli => {
            if !*on || rate <= 0.0 {
                return false;
            }
            while *next_offer < cycle {
                *next_offer = next_offer.saturating_add(gap.sample(rng));
            }
            *next_offer == cycle
        }
        InjectionProcess::BurstyOnOff {
            mean_burst,
            mean_idle,
        } => {
            let flip = if *on {
                rng.gen_bool(1.0 / mean_burst as f64)
            } else {
                rng.gen_bool(1.0 / mean_idle as f64)
            };
            if flip {
                *on = !*on;
            }
            let r = if *on { rate } else { 0.0 };
            r > 0.0 && rng.gen_bool(r)
        }
    }
}

/// Initial renewal-slot arming, mirroring `Simulation::new`.
fn oracle_arm(process: InjectionProcess, rate: f64, gap: &GapSampler, rng: &mut StdRng) -> u64 {
    match process {
        InjectionProcess::Bernoulli if rate > 0.0 => gap.sample(rng),
        _ => u64::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MOSFET channel current is monotone in Vgs at any bias point.
    #[test]
    fn mosfet_monotone_in_vgs(
        vg1 in 0.0f64..1.0,
        vg2 in 0.0f64..1.0,
        vd in 0.0f64..1.0,
    ) {
        let m = Node45::tt().mos(Polarity::Nmos, VtClass::Nominal);
        let (lo, hi) = if vg1 <= vg2 { (vg1, vg2) } else { (vg2, vg1) };
        let i_lo = m.ids_terminals(1.0e-6, lo, vd, 0.0, 0.0);
        let i_hi = m.ids_terminals(1.0e-6, hi, vd, 0.0, 0.0);
        prop_assert!(i_hi >= i_lo - 1e-18, "Ids({hi}) = {i_hi} < Ids({lo}) = {i_lo}");
    }

    /// High-Vt devices never leak more than nominal at identical bias.
    #[test]
    fn high_vt_never_leaks_more(vd in 0.05f64..1.0, w_um in 0.1f64..10.0) {
        let tech = Node45::tt();
        let w = w_um * 1.0e-6;
        let lo = tech.mos(Polarity::Nmos, VtClass::Nominal).leakage(w, 0.0, vd, 0.0, 0.0);
        let hi = tech.mos(Polarity::Nmos, VtClass::High).leakage(w, 0.0, vd, 0.0, 0.0);
        prop_assert!(hi.channel.0 <= lo.channel.0 * 1.0001);
        prop_assert!(hi.gate.0 <= lo.gate.0 * 1.0001);
    }

    /// LU solves random diagonally dominant systems to high accuracy.
    #[test]
    fn lu_solves_diagonally_dominant(
        seed_vals in proptest::collection::vec(-1.0f64..1.0, 25),
        rhs in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let n = 5;
        let mut a = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let v = seed_vals[i * n + j];
                a.set(i, j, if i == j { 10.0 + v.abs() } else { v });
            }
        }
        let b = a.mul_vec(&rhs);
        let mut x = b.clone();
        a.clone().solve_in_place(&mut x).expect("dominant matrices are regular");
        for (xi, ri) in x.iter().zip(&rhs) {
            prop_assert!((xi - ri).abs() < 1e-9, "{xi} vs {ri}");
        }
    }

    /// A resistor divider solved by the DC engine matches algebra.
    #[test]
    fn dc_divider_matches_algebra(r1 in 10.0f64..1.0e6, r2 in 10.0f64..1.0e6, v in 0.1f64..5.0) {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let mid = nl.node("mid");
        nl.vsource("V", top, Netlist::GROUND, Stimulus::dc(v));
        nl.resistor("R1", top, mid, r1).unwrap();
        nl.resistor("R2", mid, Netlist::GROUND, r2).unwrap();
        let sol = dc::solve(&nl).expect("linear network");
        let expect = v * r2 / (r1 + r2);
        prop_assert!((sol.voltage(mid) - expect).abs() < 1e-6 * v.max(1.0));
    }

    /// Waveform crossing finds the analytic crossing of a linear ramp.
    #[test]
    fn crossing_of_linear_ramp(thr in 0.05f64..0.95) {
        let w = Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]);
        let t = w.crossing(thr, Edge::Rising, -1.0).expect("must cross");
        prop_assert!((t - thr).abs() < 1e-12);
    }

    /// Histogram totals equal the sum of recorded lengths.
    #[test]
    fn histogram_conserves_cycles(lens in proptest::collection::vec(1u64..5000, 0..100)) {
        let mut h = IdleHistogram::new(256);
        let mut total = 0;
        for &l in &lens {
            h.record(l);
            total += l;
        }
        prop_assert_eq!(h.total_idle_cycles(), total);
        prop_assert_eq!(h.interval_count(), lens.len() as u64);
    }

    /// Flit conservation under every traffic pattern, injection
    /// process, packet length and topology: everything injected is
    /// either delivered or still in flight. In-order, contiguous,
    /// complete per-packet delivery is asserted inside the simulator's
    /// ejection path on every delivered flit.
    #[test]
    fn flits_conserved_under_all_traffic(
        pattern_idx in 0usize..TrafficPattern::ALL.len(),
        rate in 0.01f64..0.12,
        seed in 0u64..10_000,
        wrap_sel in 0u8..2,
        bursty_sel in 0u8..2,
        len in 1usize..6,
    ) {
        let mut sim = Simulation::new(MeshConfig {
            pattern: TrafficPattern::ALL[pattern_idx],
            injection_rate: rate,
            seed,
            wrap: wrap_sel == 1,
            packet_len_flits: len,
            injection: if bursty_sel == 1 {
                InjectionProcess::BurstyOnOff { mean_burst: 8, mean_idle: 24 }
            } else {
                InjectionProcess::Bernoulli
            },
            ..MeshConfig::default()
        });
        let stats = sim.run(0, 1200);
        prop_assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        prop_assert_eq!(stats.packets_injected * len as u64, sim.flits_injected_total());
    }

    /// The Oracle policy upper-bounds Never, Immediate and every
    /// IdleThreshold on any histogram (it takes the per-interval
    /// optimum among their choices).
    #[test]
    fn oracle_dominates_all_policies(
        lens in proptest::collection::vec(1u64..400, 1..120),
        th in 0u32..64,
        p_idle_uw in 1.0f64..50.0,
        p_stby_frac in 0.0f64..0.9,
        e_fj in 1.0f64..200.0,
    ) {
        let mut h = IdleHistogram::new(256);
        for &l in &lens {
            h.record(l);
        }
        let params = GatingParams {
            p_idle_awake: Watts(p_idle_uw * 1e-6),
            p_standby: Watts(p_idle_uw * p_stby_frac * 1e-6),
            e_transition: Joules(e_fj * 1e-15),
            wake_latency_cycles: 1,
        };
        let clock = Hertz(3.0e9);
        let oracle = evaluate_policy(&h, &params, GatingPolicy::Oracle, clock);
        for policy in [
            GatingPolicy::Never,
            GatingPolicy::Immediate,
            GatingPolicy::IdleThreshold(th),
        ] {
            let other = evaluate_policy(&h, &params, policy, clock);
            prop_assert!(
                oracle.energy_policy.0 <= other.energy_policy.0 * (1.0 + 1e-9) + 1e-24,
                "oracle {} must not exceed {policy} {}",
                oracle.energy_policy.0,
                other.energy_policy.0
            );
        }
        prop_assert!(oracle.savings_fraction() >= -1e-12);
    }

    /// The in-loop sleep FSM and the offline policy model agree on
    /// energy when evaluated over the same run — across seeds, loads,
    /// thresholds and wake latencies.
    #[test]
    fn in_loop_gating_matches_offline_model(
        seed in 0u64..10_000,
        rate in 0.01f64..0.07,
        th in 0u32..12,
        wake in 0u32..3,
    ) {
        let params = GatingParams {
            p_idle_awake: Watts(10.0e-6),
            p_standby: Watts(1.0e-6),
            e_transition: Joules(9.0e-15),
            wake_latency_cycles: wake,
        };
        let clock = Hertz(3.0e9);
        let policy = if th == 0 {
            GatingPolicy::Immediate
        } else {
            GatingPolicy::IdleThreshold(th)
        };
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: rate,
            seed,
            gating: Some(SleepConfig { policy, wake_latency: wake }),
            ..MeshConfig::default()
        });
        let stats = sim.run(100, 1500);
        let in_loop = energy_from_counters(&stats.total_gating_counters(), &params, clock);
        let offline =
            evaluate_policy(&stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS), &params, policy, clock);
        // Identical idle-cycle totals by construction…
        let rel_never = (in_loop.energy_never.0 - offline.energy_never.0).abs()
            / offline.energy_never.0.max(1e-30);
        prop_assert!(rel_never < 1e-9, "idle totals diverge: {rel_never}");
        // …and policy energy within the cross-validation tolerance.
        let rel = (in_loop.energy_policy.0 - offline.energy_policy.0).abs()
            / offline.energy_policy.0.max(1e-30);
        prop_assert!(
            rel < 0.05,
            "in-loop vs offline: {rel:.5} (seed {seed} rate {rate:.4} th {th} wake {wake})"
        );
    }

    /// Breakeven consistency: sleeping exactly `min_idle_cycles` never
    /// loses energy; one cycle fewer never wins.
    #[test]
    fn breakeven_is_consistent(
        e_fj in 0.1f64..1000.0,
        p_uw in 0.1f64..1000.0,
        f_ghz in 0.5f64..5.0,
    ) {
        let e = Joules(e_fj * 1e-15);
        let p = Watts(p_uw * 1e-6);
        let f = Hertz(f_ghz * 1e9);
        let m = min_idle_cycles(e, p, f);
        prop_assume!(m < 1_000_000);
        prop_assert!(net_saving(e, p, m as u64, f).0 >= -1e-21);
        if m > 0 {
            prop_assert!(net_saving(e, p, (m - 1) as u64, f).0 <= 1e-21);
        }
    }

    /// The event kernel's arrival prediction is draw-for-draw identical
    /// to per-cycle scanning — the invariant that makes `EventDriven`
    /// bit-exact. Predicts over a random prefix of the run, hands the
    /// stream back to tick-by-tick stepping for the remainder (the
    /// kernel-handoff case `SimKernel::Auto` relies on), and requires
    /// the same arrivals, source state and RNG position throughout.
    #[test]
    fn next_arrival_matches_per_cycle_oracle(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.6,
        bursty_sel in 0u8..3,
        mean_burst in 1u32..16,
        mean_idle in 1u32..48,
        horizon in 1u64..2_500,
        split_frac in 0.0f64..1.0,
    ) {
        let process = match bursty_sel {
            0 => InjectionProcess::Bernoulli,
            1 => InjectionProcess::BurstyOnOff { mean_burst, mean_idle },
            // Degenerate dwell times flip every cycle — the adversarial
            // corner for flip/offer draw ordering.
            _ => InjectionProcess::BurstyOnOff { mean_burst: 1, mean_idle: 1 },
        };
        let gap = GapSampler::new(rate);
        let split = (horizon as f64 * split_frac) as u64;

        // Oracle: scan every cycle of 1..=horizon.
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut on_a = true;
        let mut slot_a = oracle_arm(process, rate, &gap, &mut rng_a);
        let mut scanned = Vec::new();
        for c in 1..=horizon {
            if oracle_tick(process, rate, &mut on_a, &mut slot_a, &gap, &mut rng_a, c) {
                scanned.push(c);
                process.rearm_after_offer(&mut slot_a, &gap, &mut rng_a, c);
            }
        }

        // Prediction: leap through 1..=split, then tick out the rest.
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut on_b = true;
        let mut slot_b = oracle_arm(process, rate, &gap, &mut rng_b);
        let mut predicted = Vec::new();
        let mut from = 0u64;
        while let Some(c) =
            process.next_arrival(rate, &mut on_b, &mut slot_b, &gap, &mut rng_b, from, split)
        {
            predicted.push(c);
            process.rearm_after_offer(&mut slot_b, &gap, &mut rng_b, c);
            from = c;
        }
        for c in split + 1..=horizon {
            if oracle_tick(process, rate, &mut on_b, &mut slot_b, &gap, &mut rng_b, c) {
                predicted.push(c);
                process.rearm_after_offer(&mut slot_b, &gap, &mut rng_b, c);
            }
        }

        prop_assert_eq!(predicted, scanned);
        prop_assert_eq!(on_b, on_a);
        prop_assert_eq!(slot_b, slot_a);
        prop_assert_eq!(rng_b.next_u64(), rng_a.next_u64());
    }
}
