//! Property-based tests on the cross-crate invariants.

use leakage_noc::circuit::dc;
use leakage_noc::circuit::linear::Matrix;
use leakage_noc::circuit::netlist::Netlist;
use leakage_noc::circuit::stimulus::Stimulus;
use leakage_noc::circuit::waveform::{Edge, Waveform};
use leakage_noc::power::breakeven::{min_idle_cycles, net_saving};
use leakage_noc::power::gating::IdleHistogram;
use leakage_noc::tech::device::{Polarity, VtClass};
use leakage_noc::tech::node45::Node45;
use leakage_noc::tech::units::{Hertz, Joules, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MOSFET channel current is monotone in Vgs at any bias point.
    #[test]
    fn mosfet_monotone_in_vgs(
        vg1 in 0.0f64..1.0,
        vg2 in 0.0f64..1.0,
        vd in 0.0f64..1.0,
    ) {
        let m = Node45::tt().mos(Polarity::Nmos, VtClass::Nominal);
        let (lo, hi) = if vg1 <= vg2 { (vg1, vg2) } else { (vg2, vg1) };
        let i_lo = m.ids_terminals(1.0e-6, lo, vd, 0.0, 0.0);
        let i_hi = m.ids_terminals(1.0e-6, hi, vd, 0.0, 0.0);
        prop_assert!(i_hi >= i_lo - 1e-18, "Ids({hi}) = {i_hi} < Ids({lo}) = {i_lo}");
    }

    /// High-Vt devices never leak more than nominal at identical bias.
    #[test]
    fn high_vt_never_leaks_more(vd in 0.05f64..1.0, w_um in 0.1f64..10.0) {
        let tech = Node45::tt();
        let w = w_um * 1.0e-6;
        let lo = tech.mos(Polarity::Nmos, VtClass::Nominal).leakage(w, 0.0, vd, 0.0, 0.0);
        let hi = tech.mos(Polarity::Nmos, VtClass::High).leakage(w, 0.0, vd, 0.0, 0.0);
        prop_assert!(hi.channel.0 <= lo.channel.0 * 1.0001);
        prop_assert!(hi.gate.0 <= lo.gate.0 * 1.0001);
    }

    /// LU solves random diagonally dominant systems to high accuracy.
    #[test]
    fn lu_solves_diagonally_dominant(
        seed_vals in proptest::collection::vec(-1.0f64..1.0, 25),
        rhs in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let n = 5;
        let mut a = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let v = seed_vals[i * n + j];
                a.set(i, j, if i == j { 10.0 + v.abs() } else { v });
            }
        }
        let b = a.mul_vec(&rhs);
        let mut x = b.clone();
        a.clone().solve_in_place(&mut x).expect("dominant matrices are regular");
        for (xi, ri) in x.iter().zip(&rhs) {
            prop_assert!((xi - ri).abs() < 1e-9, "{xi} vs {ri}");
        }
    }

    /// A resistor divider solved by the DC engine matches algebra.
    #[test]
    fn dc_divider_matches_algebra(r1 in 10.0f64..1.0e6, r2 in 10.0f64..1.0e6, v in 0.1f64..5.0) {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let mid = nl.node("mid");
        nl.vsource("V", top, Netlist::GROUND, Stimulus::dc(v));
        nl.resistor("R1", top, mid, r1).unwrap();
        nl.resistor("R2", mid, Netlist::GROUND, r2).unwrap();
        let sol = dc::solve(&nl).expect("linear network");
        let expect = v * r2 / (r1 + r2);
        prop_assert!((sol.voltage(mid) - expect).abs() < 1e-6 * v.max(1.0));
    }

    /// Waveform crossing finds the analytic crossing of a linear ramp.
    #[test]
    fn crossing_of_linear_ramp(thr in 0.05f64..0.95) {
        let w = Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]);
        let t = w.crossing(thr, Edge::Rising, -1.0).expect("must cross");
        prop_assert!((t - thr).abs() < 1e-12);
    }

    /// Histogram totals equal the sum of recorded lengths.
    #[test]
    fn histogram_conserves_cycles(lens in proptest::collection::vec(1u64..5000, 0..100)) {
        let mut h = IdleHistogram::new(256);
        let mut total = 0;
        for &l in &lens {
            h.record(l);
            total += l;
        }
        prop_assert_eq!(h.total_idle_cycles(), total);
        prop_assert_eq!(h.interval_count(), lens.len() as u64);
    }

    /// Breakeven consistency: sleeping exactly `min_idle_cycles` never
    /// loses energy; one cycle fewer never wins.
    #[test]
    fn breakeven_is_consistent(
        e_fj in 0.1f64..1000.0,
        p_uw in 0.1f64..1000.0,
        f_ghz in 0.5f64..5.0,
    ) {
        let e = Joules(e_fj * 1e-15);
        let p = Watts(p_uw * 1e-6);
        let f = Hertz(f_ghz * 1e9);
        let m = min_idle_cycles(e, p, f);
        prop_assume!(m < 1_000_000);
        prop_assert!(net_saving(e, p, m as u64, f).0 >= -1e-21);
        if m > 0 {
            prop_assert!(net_saving(e, p, (m - 1) as u64, f).0 <= 1e-21);
        }
    }
}
