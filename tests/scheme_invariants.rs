//! Integration tests: structural invariants of the five schemes that
//! must hold under *any* valid configuration — exercised across several
//! configurations, not just the paper's.

use leakage_noc::circuit::dc;
use leakage_noc::core::config::{CrossbarConfig, SliceSizing};
use leakage_noc::core::schematic;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::core::slice::BitSlice;
use leakage_noc::tech::units::Hertz;

fn configs() -> Vec<CrossbarConfig> {
    vec![
        CrossbarConfig {
            flit_bits: 16,
            sim_dt: 1.0e-12,
            ..CrossbarConfig::paper()
        },
        CrossbarConfig {
            flit_bits: 64,
            clock: Hertz(2.0e9),
            pitch_factor: 2.0,
            sim_dt: 0.5e-12,
            ..CrossbarConfig::paper()
        },
        CrossbarConfig {
            radix: 4,
            flit_bits: 32,
            sim_dt: 0.5e-12,
            sizing: SliceSizing {
                w_pass: 1.8e-6,
                ..SliceSizing::default()
            },
            ..CrossbarConfig::paper()
        },
    ]
}

#[test]
fn every_scheme_transfers_both_levels_in_every_config() {
    for (ci, cfg) in configs().iter().enumerate() {
        for scheme in Scheme::ALL {
            for data in [false, true] {
                let mut slice = BitSlice::build(scheme, cfg);
                let input = if scheme.is_segmented() {
                    slice.set_enable_far(true);
                    slice.set_sleep_slack(true);
                    leakage_noc::core::slice::CRIT_INPUTS[0]
                } else {
                    0
                };
                slice.set_grant(input, true);
                slice.set_data(input, data);
                if scheme.is_precharged() {
                    // Evaluation with A pinned appropriately.
                    slice.set_precharge_main(data);
                }
                let sol = dc::solve(&slice.netlist)
                    .unwrap_or_else(|e| panic!("cfg {ci} {scheme} data={data}: {e}"));
                let out = sol.voltage(slice.out);
                if data {
                    assert!(out > 0.85, "cfg {ci} {scheme}: data=1 → out {out}");
                } else {
                    assert!(out < 0.15, "cfg {ci} {scheme}: data=0 → out {out}");
                }
            }
        }
    }
}

#[test]
fn standby_pulls_node_a_down_in_every_scheme() {
    let cfg = CrossbarConfig::test_small();
    for scheme in Scheme::ALL {
        let mut slice = BitSlice::build(scheme, &cfg);
        slice.set_sleep_main(true);
        slice.set_sleep_slack(true);
        slice.set_enable_near(true);
        slice.set_enable_far(true);
        if scheme.is_precharged() {
            slice.set_precharge(false);
        }
        let sol = dc::solve(&slice.netlist).expect("standby state converges");
        assert!(
            sol.voltage(slice.a_main) < 0.1,
            "{scheme}: node A = {} in standby",
            sol.voltage(slice.a_main)
        );
        if let Some(a_slack) = slice.a_slack {
            assert!(
                sol.voltage(a_slack) < 0.1,
                "{scheme}: slack node A = {} in standby",
                sol.voltage(a_slack)
            );
        }
    }
}

#[test]
fn high_vt_count_grows_with_scheme_aggressiveness() {
    let cfg = CrossbarConfig::test_small();
    let count = |s: Scheme| BitSlice::build(s, &cfg).vt_census().1;
    assert_eq!(count(Scheme::Sc), 0, "baseline is single-Vt by definition");
    assert!(count(Scheme::Dfc) >= 2);
    assert!(count(Scheme::Dpc) > count(Scheme::Dfc));
    assert!(count(Scheme::Sdfc) > count(Scheme::Dfc));
    assert!(count(Scheme::Sdpc) >= count(Scheme::Sdfc));
}

#[test]
fn schematics_reference_every_figure_device() {
    let cfg = CrossbarConfig::test_small();
    // Fig 1 roster: N1–N4 (pass), N5 (sleep), P1 (keeper), I1, I2.
    let spice = schematic::export_spice(Scheme::Dfc, &cfg);
    for name in [
        "Mpass0",
        "Mpass3",
        "Msleep_n5",
        "Mkeeper_p1",
        "Mi1_n",
        "Mi2_p",
    ] {
        assert!(spice.contains(name), "Fig 1 export missing {name}");
    }
    // Fig 2 swaps the keeper for the clocked pre-charge device.
    let spice = schematic::export_spice(Scheme::Dpc, &cfg);
    assert!(spice.contains("Mpre_p1"));
    assert!(!spice.contains("Mkeeper_p1"));
    // Fig 3 variants have two A-domains and isolation gates.
    for scheme in [Scheme::Sdfc, Scheme::Sdpc] {
        let spice = schematic::export_spice(scheme, &cfg);
        for name in [
            "Msleep1_n5",
            "Msleep2_n5",
            "Miso_far_n",
            "Miso_near_p",
            "Mi1a_p",
            "Mi1b_n",
        ] {
            assert!(spice.contains(name), "{scheme} export missing {name}");
        }
    }
}

#[test]
fn slice_netlists_are_deterministic() {
    let cfg = CrossbarConfig::test_small();
    for scheme in Scheme::ALL {
        let a = schematic::export_spice(scheme, &cfg);
        let b = schematic::export_spice(scheme, &cfg);
        assert_eq!(a, b, "{scheme}: generation must be deterministic");
    }
}
