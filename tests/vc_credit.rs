//! Property tests for the VC/credit layer: credit conservation (the
//! credits an upstream output lane holds plus the flits buffered in the
//! downstream input VC always equal the per-VC depth) and
//! deadlock-freedom of dateline DOR on the torus under the
//! torus-stressing Tornado pattern at saturation.
//!
//! Conservation is asserted on **every cycle of every debug-build
//! simulation**: the active-set kernel re-checks the invariant at the
//! end of each cycle via a `debug_assert`, so the runs below verify it
//! continuously; the explicit `check_credit_conservation` calls pin it
//! at the observation points in release builds too.

use leakage_noc::netsim::{
    GatingPolicy, InjectionProcess, MeshConfig, SimKernel, Simulation, SleepConfig, TrafficPattern,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Credits held + flits buffered == depth per VC, across patterns,
    /// topologies, VC counts, depths and gating — checked every cycle
    /// in debug (the in-loop debug_assert) and at the mid-run and
    /// end-of-run observation points explicitly.
    #[test]
    fn credits_are_conserved_across_configs(
        pattern_idx in 0usize..TrafficPattern::ALL.len(),
        rate in 0.01f64..0.25,
        seed in 0u64..10_000,
        wrap_sel in 0u8..2,
        vcs_sel in 0usize..3,
        depth in 1usize..5,
        len in 1usize..6,
        gated in 0u8..2,
    ) {
        let mut sim = Simulation::new(MeshConfig {
            pattern: TrafficPattern::ALL[pattern_idx],
            injection_rate: rate,
            seed,
            wrap: wrap_sel == 1,
            vcs: [1, 2, 4][vcs_sel],
            buffer_depth: depth,
            packet_len_flits: len,
            gating: (gated == 1).then_some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(3),
                wake_latency: 1,
            }),
            kernel: SimKernel::ActiveSet,
            ..MeshConfig::default()
        });
        // Two windows: the invariant must hold mid-stream (with worms
        // straddling links) and after drain time alike.
        sim.run(0, 400);
        sim.check_credit_conservation();
        sim.run(0, 400);
        sim.check_credit_conservation();
    }

    /// Deadlock freedom: Tornado at saturation on a wrapped mesh with
    /// 2 VCs (dateline switching) keeps streaming packets — the
    /// watchdog would abort the run if the rings ever wedged.
    #[test]
    fn torus_tornado_saturation_is_deadlock_free_with_2_vcs(
        seed in 0u64..10_000,
        rate in 0.5f64..1.0,
        len in 2usize..7,
        bursty_sel in 0u8..2,
    ) {
        let mut sim = Simulation::new(MeshConfig {
            width: 8,
            height: 8,
            wrap: true,
            vcs: 2,
            pattern: TrafficPattern::Tornado,
            injection_rate: if bursty_sel == 1 { rate.min(0.25) } else { rate },
            packet_len_flits: len,
            injection: if bursty_sel == 1 {
                InjectionProcess::BurstyOnOff { mean_burst: 8, mean_idle: 24 }
            } else {
                InjectionProcess::Bernoulli
            },
            source_queue_cap: 4,
            watchdog_cycles: 1_000,
            seed,
            ..MeshConfig::default()
        });
        let stats = sim.run(0, 3_000);
        // Saturated rings must actually stream, not just avoid the
        // watchdog by trickling.
        prop_assert!(
            stats.packets_delivered > 200,
            "only {} packets delivered at rate {rate}",
            stats.packets_delivered
        );
        prop_assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        sim.check_credit_conservation();
    }
}

#[test]
fn torus_tornado_saturation_16x16_acceptance() {
    // The acceptance-criterion scenario at full size, both kernels:
    // 16×16 wrapped, Tornado, saturating injection, vcs = 2, watchdog
    // armed tight. Must drain without tripping and agree across
    // kernels.
    let cfg = MeshConfig {
        width: 16,
        height: 16,
        wrap: true,
        vcs: 2,
        pattern: TrafficPattern::Tornado,
        injection_rate: 1.0,
        source_queue_cap: 4,
        watchdog_cycles: 2_000,
        seed: 2005,
        ..MeshConfig::default()
    };
    let mut active = Simulation::new(MeshConfig {
        kernel: SimKernel::ActiveSet,
        ..cfg.clone()
    });
    let mut reference = Simulation::new(MeshConfig {
        kernel: SimKernel::Reference,
        ..cfg
    });
    let sa = active.run(200, 4_000);
    let sr = reference.run(200, 4_000);
    assert_eq!(sa, sr, "kernels diverged on the saturated dateline torus");
    assert!(
        sa.packets_delivered > 1_000,
        "saturated 16×16 torus must stream packets, got {}",
        sa.packets_delivered
    );
    active.check_credit_conservation();
}
