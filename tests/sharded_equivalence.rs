//! The sharded kernel is a parallelization, not a model change: for
//! any configuration and seed it must produce **byte-identical**
//! [`NetworkStats`] to the serial active-set kernel — every counter,
//! every idle-interval histogram bin, every gating counter — for every
//! shard count *and* every thread count. These tests pin that across
//! the scenario matrix the issue names: `shards ∈ {1, 2, 4, 8}` ×
//! {mesh, torus} × {uniform, tornado, bursty} × `vcs ∈ {1, 2}` ×
//! gating on/off.

use leakage_noc::netsim::{
    FaultPlan, GatingPolicy, InjectionProcess, MeshConfig, NetworkStats, SimKernel, Simulation,
    SleepConfig, TrafficPattern,
};
use proptest::prelude::*;

/// Runs one config under the serial active-set kernel and under the
/// sharded kernel at every requested shard count, asserting exact
/// equality of statistics and conservation state.
fn assert_sharded_matches_serial(
    cfg: MeshConfig,
    shard_counts: &[usize],
    warmup: u64,
    measure: u64,
) {
    let mut serial = Simulation::new(MeshConfig {
        kernel: SimKernel::ActiveSet,
        ..cfg.clone()
    });
    let expected = serial.run(warmup, measure);
    for &shards in shard_counts {
        let mut sim = Simulation::new(MeshConfig {
            kernel: SimKernel::Sharded,
            shards,
            threads: 1,
            ..cfg.clone()
        });
        let got = sim.run(warmup, measure);
        assert_eq!(
            expected,
            got,
            "NetworkStats diverged at shards={shards} (resolved {})",
            sim.shards()
        );
        assert_eq!(serial.flits_injected_total(), sim.flits_injected_total());
        assert_eq!(serial.in_flight_flits(), sim.in_flight_flits());
        assert_eq!(
            serial.flits_dropped_by_fault_total(),
            sim.flits_dropped_by_fault_total()
        );
        sim.check_credit_conservation();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Byte-identical stats across shard counts × mesh/torus ×
    /// {uniform, tornado, bursty} × VC counts × gating on/off.
    #[test]
    fn sharded_matches_active_set(
        seed in 0u64..10_000,
        rate in 0.005f64..0.10,
        wrap_sel in 0u8..2,
        traffic_sel in 0u8..3,
        vcs_sel in 0usize..2,
        gated_sel in 0u8..2,
        len in 1usize..6,
        warmup in 0u64..150,
    ) {
        let (pattern, injection) = match traffic_sel {
            0 => (TrafficPattern::UniformRandom, InjectionProcess::Bernoulli),
            1 => (TrafficPattern::Tornado, InjectionProcess::Bernoulli),
            _ => (
                TrafficPattern::UniformRandom,
                InjectionProcess::BurstyOnOff { mean_burst: 8, mean_idle: 24 },
            ),
        };
        let cfg = MeshConfig {
            width: 8,
            height: 8,
            injection_rate: rate,
            pattern,
            injection,
            wrap: wrap_sel == 1,
            vcs: [1, 2][vcs_sel],
            packet_len_flits: len,
            gating: (gated_sel == 1).then_some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(3),
                wake_latency: 2,
            }),
            seed,
            ..MeshConfig::default()
        };
        assert_sharded_matches_serial(cfg, &[1, 2, 4, 8], warmup, 700);
    }
}

#[test]
fn thread_count_never_changes_results() {
    // `shards` fixes the tile geometry and the results; `threads` is
    // an execution detail. Replay the same 8-shard run with 1, 2, 3
    // and 8 workers (on any host core count) and demand byte-identical
    // statistics — including a worker count that does not divide the
    // shard count evenly.
    let cfg = MeshConfig {
        width: 8,
        height: 16,
        injection_rate: 0.06,
        wrap: true,
        vcs: 2,
        pattern: TrafficPattern::Tornado,
        gating: Some(SleepConfig {
            policy: GatingPolicy::IdleThreshold(4),
            wake_latency: 1,
        }),
        seed: 99,
        kernel: SimKernel::Sharded,
        shards: 8,
        ..MeshConfig::default()
    };
    let run = |threads: usize| {
        let mut sim = Simulation::new(MeshConfig {
            threads,
            ..cfg.clone()
        });
        let stats = sim.run(100, 1200);
        sim.check_credit_conservation();
        stats
    };
    let one = run(1);
    for threads in [2, 3, 8] {
        assert_eq!(one, run(threads), "threads={threads} changed results");
    }
}

#[test]
fn visit_order_is_irrelevant_in_tiles() {
    // The cycle-start credit snapshot argument carries over to tiles:
    // reversing the per-tile visit order must not change anything.
    let cfg = MeshConfig {
        width: 8,
        height: 8,
        injection_rate: 0.08,
        vcs: 2,
        seed: 5,
        kernel: SimKernel::Sharded,
        shards: 4,
        threads: 1,
        ..MeshConfig::default()
    };
    let mut fwd = Simulation::new(cfg.clone());
    let mut rev = Simulation::new(cfg);
    rev.set_visit_reversed(true);
    assert_eq!(fwd.run(100, 1200), rev.run(100, 1200));
}

#[test]
fn sharded_64x64_all_idle_settles_in_bulk() {
    // The quiescence acceptance test: an all-idle 64×64 sharded run
    // must settle every tile's worklist immediately — no router is
    // ever stepped, and the bulk accounting reproduces the exact idle
    // totals (one open interval of `measure` cycles per output VC
    // lane), across every tile and the merge.
    let measure = 2000u64;
    let mut sim = Simulation::new(MeshConfig {
        width: 64,
        height: 64,
        injection_rate: 0.0,
        kernel: SimKernel::Sharded,
        shards: 8,
        ..MeshConfig::default()
    });
    assert_eq!(sim.shards(), 8);
    let stats = sim.run(0, measure);
    assert_eq!(sim.active_router_count(), 0, "no router may stay active");
    assert_eq!(
        sim.routers_stepped_total(),
        0,
        "an all-idle network must never wake a worker to step a router"
    );
    let n = sim.mesh().len() as u64;
    let lanes = 5;
    let merged = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
    assert_eq!(merged.total_idle_cycles(), measure * n * lanes);
    assert_eq!(merged.interval_count(), n * lanes);
    assert_eq!(merged.open_runs().len(), (n * lanes) as usize);
    for a in &stats.router_activity {
        assert_eq!(a.cycles, measure);
        assert_eq!(a.arbitrations, measure * lanes);
        assert_eq!(a.crossbar_traversals, 0);
    }
    assert_eq!(stats.packets_injected, 0);
}

#[test]
fn sharded_64x64_spot_check_matches_serial() {
    // One deterministic large-mesh point: the scale the sharded kernel
    // exists for, checked against the serial kernel at a short length
    // so the suite stays fast.
    let cfg = MeshConfig {
        width: 64,
        height: 64,
        injection_rate: 0.01,
        gating: Some(SleepConfig {
            policy: GatingPolicy::IdleThreshold(4),
            wake_latency: 2,
        }),
        seed: 2005,
        ..MeshConfig::default()
    };
    assert_sharded_matches_serial(cfg, &[8], 50, 300);
}

#[test]
fn shard_count_is_clamped_to_mesh_height() {
    // Every tile band needs at least one row; an over-asked shard
    // count degrades gracefully instead of panicking.
    let mut sim = Simulation::new(MeshConfig {
        width: 4,
        height: 4,
        kernel: SimKernel::Sharded,
        shards: 64,
        threads: 16,
        ..MeshConfig::default()
    });
    assert_eq!(sim.shards(), 4);
    assert!(sim.threads() <= 4);
    let stats = sim.run(50, 500);
    assert!(stats.measured_cycles == 500);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Faulted runs are shard-count-independent too: the three-pass
    /// reap exchanges doomed packets and credit returns through the
    /// barrier, so kills, heals and reroutes land identically at every
    /// shard geometry — including tiles whose routers all die.
    #[test]
    fn faulted_sharded_matches_serial(
        seed in 0u64..10_000,
        fault_seed in 0u64..1_000,
        rate in 0.01f64..0.10,
        wrap_sel in 0u8..2,
        link_faults in 0usize..3,
        router_faults in 0usize..2,
        transients in 0usize..2,
    ) {
        prop_assume!(link_faults + router_faults + transients > 0);
        let cfg = MeshConfig {
            width: 8,
            height: 8,
            injection_rate: rate,
            wrap: wrap_sel == 1,
            vcs: if wrap_sel == 1 { 2 } else { 1 },
            seed,
            faults: Some(FaultPlan {
                seed: fault_seed,
                link_faults,
                router_faults,
                transient_link_faults: transients,
                transient_duration: 120,
                start_cycle: 80,
                window: 250,
                ..FaultPlan::default()
            }),
            ..MeshConfig::default()
        };
        assert_sharded_matches_serial(cfg, &[1, 2, 4, 8], 0, 800);
    }
}

#[test]
fn faulted_sharded_survives_threads() {
    // Thread count stays an execution detail on a faulted network:
    // the reap barriers synchronize every worker, so 1, 2 and 8
    // workers replay the same kills byte-for-byte.
    let cfg = MeshConfig {
        width: 8,
        height: 16,
        injection_rate: 0.06,
        wrap: true,
        vcs: 2,
        seed: 42,
        kernel: SimKernel::Sharded,
        shards: 8,
        faults: Some(FaultPlan {
            seed: 17,
            link_faults: 2,
            router_faults: 1,
            transient_link_faults: 1,
            transient_duration: 200,
            start_cycle: 150,
            window: 300,
            ..FaultPlan::default()
        }),
        ..MeshConfig::default()
    };
    let run = |threads: usize| {
        let mut sim = Simulation::new(MeshConfig {
            threads,
            ..cfg.clone()
        });
        let stats = sim.run(0, 1500);
        sim.check_credit_conservation();
        stats
    };
    let one = run(1);
    assert!(one.flits_dropped_by_fault > 0, "the plan must bite");
    for threads in [2, 8] {
        assert_eq!(one, run(threads), "threads={threads} changed results");
    }
}

#[test]
fn sharded_saturated_dateline_torus_drains_around_dead_link() {
    // The graceful-degradation acceptance scenario, sharded: a
    // saturated dateline torus loses a link mid-run and must keep
    // streaming packets around the detour — identically at every
    // shard count, without tripping the watchdog.
    let cfg = MeshConfig {
        width: 16,
        height: 16,
        wrap: true,
        vcs: 2,
        pattern: TrafficPattern::Tornado,
        injection_rate: 1.0,
        source_queue_cap: 4,
        watchdog_cycles: 2_000,
        seed: 9,
        faults: Some(FaultPlan {
            seed: 13,
            link_faults: 1,
            start_cycle: 400,
            window: 1,
            ..FaultPlan::default()
        }),
        ..MeshConfig::default()
    };
    assert_sharded_matches_serial(cfg, &[2, 4], 0, 1500);
}

#[test]
fn sharded_saturated_dateline_torus_drains() {
    // The deadlock-freedom showcase under the sharded kernel: Tornado
    // at saturation on a wrapped 16×16 with dateline VCs, watchdog
    // armed, boundary mailboxes carrying wrap traffic between the
    // first and last band.
    let cfg = MeshConfig {
        width: 16,
        height: 16,
        wrap: true,
        vcs: 2,
        pattern: TrafficPattern::Tornado,
        injection_rate: 1.0,
        source_queue_cap: 4,
        watchdog_cycles: 2_000,
        seed: 9,
        ..MeshConfig::default()
    };
    assert_sharded_matches_serial(cfg, &[2, 4], 0, 1500);
}
