//! The active-set, sharded and event-driven kernels are
//! optimizations, not model changes: for any configuration and seed
//! they must produce **bit-identical** [`NetworkStats`] to the dense
//! reference kernel — every counter, every idle-interval histogram
//! bin, every gating counter. These tests pin that across the full
//! four-kernel × shard-count scenario matrix
//! (`tests/sharded_equivalence.rs` adds the dedicated shard/thread
//! dimension), including the points that stress the event kernel's
//! leap machinery: fault epochs landing mid-leap, and saturated
//! dateline-torus traffic where leaping degrades to ~per-cycle
//! stepping.

use leakage_noc::netsim::{
    FaultPlan, GatingPolicy, InjectionProcess, MeshConfig, NetworkStats, SimKernel, Simulation,
    SleepConfig, TrafficPattern,
};
use proptest::prelude::*;

/// CI runs the suite once per VC count by exporting `LNOC_VCS`; when
/// set, it overrides the generated VC dimension so every case in the
/// matrix exercises exactly that configuration.
fn vcs_override() -> Option<usize> {
    std::env::var("LNOC_VCS").ok().map(|v| {
        v.parse()
            .expect("LNOC_VCS must be a VC count (e.g. 1, 2, 4)")
    })
}

/// Runs one config under all four kernels — the sharded kernel at a
/// shard count derived from the seed, so the proptest matrix sweeps
/// shard geometries too — and asserts exact equality of stats and
/// conservation state.
fn assert_kernels_agree(cfg: MeshConfig, warmup: u64, measure: u64, reversed: bool) {
    let shards = [1usize, 2, 4, 8][(cfg.seed % 4) as usize];
    let mut active = Simulation::new(MeshConfig {
        kernel: SimKernel::ActiveSet,
        ..cfg.clone()
    });
    let mut sharded = Simulation::new(MeshConfig {
        kernel: SimKernel::Sharded,
        shards,
        threads: 1,
        ..cfg.clone()
    });
    let mut event = Simulation::new(MeshConfig {
        kernel: SimKernel::EventDriven,
        ..cfg.clone()
    });
    let mut reference = Simulation::new(MeshConfig {
        kernel: SimKernel::Reference,
        ..cfg
    });
    active.set_visit_reversed(reversed);
    sharded.set_visit_reversed(reversed);
    event.set_visit_reversed(reversed);
    reference.set_visit_reversed(reversed);
    let sa = active.run(warmup, measure);
    let sr = reference.run(warmup, measure);
    let ss = sharded.run(warmup, measure);
    let se = event.run(warmup, measure);
    assert_eq!(sa, sr, "NetworkStats diverged between serial kernels");
    assert_eq!(
        sa,
        ss,
        "NetworkStats diverged between active-set and sharded ({} shards)",
        sharded.shards()
    );
    assert_eq!(
        sa, se,
        "NetworkStats diverged between active-set and event-driven"
    );
    for (name, other) in [
        ("reference", &reference),
        ("sharded", &sharded),
        ("event", &event),
    ] {
        assert_eq!(
            active.flits_injected_total(),
            other.flits_injected_total(),
            "flits_injected diverged vs {name}"
        );
        assert_eq!(
            active.in_flight_flits(),
            other.in_flight_flits(),
            "in-flight flits diverged vs {name}"
        );
        assert_eq!(
            active.flits_dropped_by_fault_total(),
            other.flits_dropped_by_fault_total(),
            "fault drops diverged vs {name}"
        );
    }
    // Leap telemetry is exclusive to the event kernel; it never leaks
    // into the others and never perturbs the stats compared above.
    assert_eq!(active.cycles_leapt_total(), 0);
    assert_eq!(sharded.cycles_leapt_total(), 0);
    assert_eq!(reference.events_processed_total(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bit-identical stats across patterns × injection processes ×
    /// mesh/torus × VC counts × gating policies × visit order × packet
    /// lengths.
    #[test]
    fn active_set_matches_reference(
        pattern_idx in 0usize..TrafficPattern::ALL.len(),
        rate in 0.005f64..0.12,
        seed in 0u64..10_000,
        wrap_sel in 0u8..2,
        bursty_sel in 0u8..2,
        reversed_sel in 0u8..2,
        len in 1usize..6,
        vcs_sel in 0usize..3,
        gating_sel in 0u8..5,
        wake in 0u32..3,
        warmup in 0u64..200,
    ) {
        let gating = match gating_sel {
            0 => None,
            1 => Some(GatingPolicy::Never),
            2 => Some(GatingPolicy::Immediate),
            3 => Some(GatingPolicy::IdleThreshold(2)),
            _ => Some(GatingPolicy::IdleThreshold(9)),
        }
        .map(|policy| SleepConfig {
            policy,
            wake_latency: wake,
        });
        let cfg = MeshConfig {
            pattern: TrafficPattern::ALL[pattern_idx],
            injection_rate: rate,
            seed,
            wrap: wrap_sel == 1,
            packet_len_flits: len,
            vcs: vcs_override().unwrap_or([1, 2, 4][vcs_sel]),
            injection: if bursty_sel == 1 {
                InjectionProcess::BurstyOnOff { mean_burst: 8, mean_idle: 24 }
            } else {
                InjectionProcess::Bernoulli
            },
            gating,
            ..MeshConfig::default()
        };
        assert_kernels_agree(cfg, warmup, 900, reversed_sel == 1);
    }

    /// Faulted runs stay bit-identical too: the fault schedule is a
    /// pure function of (plan, mesh) and epochs apply at cycle
    /// boundaries, so link/router deaths, transient heals and the
    /// reaping of torn worms must not introduce any kernel- or
    /// shard-dependent behaviour.
    #[test]
    fn faulted_kernels_agree(
        rate in 0.01f64..0.10,
        seed in 0u64..10_000,
        fault_seed in 0u64..1_000,
        wrap_sel in 0u8..2,
        vcs_sel in 0usize..3,
        link_faults in 0usize..3,
        router_faults in 0usize..2,
        transients in 0usize..2,
        start in 50u64..300,
        window in 1u64..400,
    ) {
        prop_assume!(link_faults + router_faults + transients > 0);
        let cfg = MeshConfig {
            width: 6,
            height: 6,
            injection_rate: rate,
            seed,
            wrap: wrap_sel == 1,
            // Wrapped runs need the dateline escape VC.
            vcs: vcs_override().unwrap_or([1, 2, 4][vcs_sel]).max(
                if wrap_sel == 1 { 2 } else { 1 }
            ),
            faults: Some(FaultPlan {
                seed: fault_seed,
                link_faults,
                router_faults,
                transient_link_faults: transients,
                transient_duration: 120,
                start_cycle: start,
                window,
                ..FaultPlan::default()
            }),
            ..MeshConfig::default()
        };
        assert_kernels_agree(cfg, 0, 900, false);
    }

    /// Flit conservation under faults, measured from cycle 0: every
    /// injected flit is delivered, still in flight, or was reaped at a
    /// fault boundary — exactly, for any plan the generator draws.
    #[test]
    fn faulted_flit_conservation(
        rate in 0.01f64..0.12,
        seed in 0u64..10_000,
        fault_seed in 0u64..1_000,
        wrap_sel in 0u8..2,
        link_faults in 0usize..4,
        router_faults in 0usize..3,
        transients in 0usize..3,
        len in 1usize..6,
        measure in 300u64..1200,
    ) {
        let mut sim = Simulation::new(MeshConfig {
            width: 6,
            height: 6,
            injection_rate: rate,
            seed,
            wrap: wrap_sel == 1,
            vcs: if wrap_sel == 1 { 2 } else { 1 },
            packet_len_flits: len,
            faults: Some(FaultPlan {
                seed: fault_seed,
                link_faults,
                router_faults,
                transient_link_faults: transients,
                transient_duration: 100,
                start_cycle: 100,
                window: 300,
                ..FaultPlan::default()
            }),
            ..MeshConfig::default()
        });
        let stats = sim.run(0, measure);
        prop_assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits() + sim.flits_dropped_by_fault_total()
        );
        sim.check_credit_conservation();
    }
}

#[test]
fn kernels_agree_on_larger_meshes() {
    // Deterministic spot checks at the sizes the sweep baselines use,
    // including the gated low-rate regime the paper cares about and
    // the multi-VC variants the sweep's VC dimension runs.
    for (w, h, rate, vcs, gating) in [
        (8, 8, 0.02, 1, None),
        (8, 8, 0.02, 4, None),
        (
            16,
            16,
            0.01,
            1,
            Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(4),
                wake_latency: 2,
            }),
        ),
        (
            16,
            16,
            0.01,
            2,
            Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(4),
                wake_latency: 2,
            }),
        ),
        (
            16,
            16,
            0.05,
            1,
            Some(SleepConfig {
                policy: GatingPolicy::Immediate,
                wake_latency: 1,
            }),
        ),
    ] {
        assert_kernels_agree(
            MeshConfig {
                width: w,
                height: h,
                injection_rate: rate,
                vcs: vcs_override().unwrap_or(vcs),
                gating,
                seed: 2005,
                ..MeshConfig::default()
            },
            300,
            2000,
            false,
        );
    }
}

#[test]
fn kernels_agree_on_faulted_grid() {
    // Deterministic faulted spot checks: permanent link kills, a
    // router death and a transient heal, on mesh and torus, at the
    // sweep's sizes — each run under all three kernels (the sharded
    // one at a seed-derived shard count via `assert_kernels_agree`).
    for (wrap, vcs, links, routers, transients, seed) in [
        (false, 1, 1, 0, 0, 0u64),
        (false, 2, 2, 1, 0, 1),
        (true, 2, 1, 0, 1, 2),
        (true, 4, 2, 1, 1, 3),
    ] {
        assert_kernels_agree(
            MeshConfig {
                width: 8,
                height: 8,
                injection_rate: 0.05,
                wrap,
                vcs: vcs_override().unwrap_or(vcs).max(if wrap { 2 } else { 1 }),
                seed: 100 + seed,
                faults: Some(FaultPlan {
                    seed: 40 + seed,
                    link_faults: links,
                    router_faults: routers,
                    transient_link_faults: transients,
                    transient_duration: 150,
                    start_cycle: 150,
                    window: 250,
                    ..FaultPlan::default()
                }),
                ..MeshConfig::default()
            },
            0,
            1800,
            false,
        );
    }
}

#[test]
fn kernels_agree_on_saturated_dateline_torus() {
    // The deadlock-freedom showcase must also be kernel-exact: Tornado
    // at saturation on a wrapped mesh with dateline VCs, where credits
    // are scarce and the worklist never empties.
    assert_kernels_agree(
        MeshConfig {
            width: 8,
            height: 8,
            wrap: true,
            vcs: vcs_override().unwrap_or(2).max(2),
            pattern: TrafficPattern::Tornado,
            injection_rate: 0.6,
            source_queue_cap: 4,
            watchdog_cycles: 2_000,
            seed: 11,
            ..MeshConfig::default()
        },
        100,
        1500,
        false,
    );
}

#[test]
fn kernels_agree_on_faulted_saturated_torus() {
    // The event kernel's worst case, both stressors at once: a
    // saturated dateline torus (the wheel never empties, leaping
    // degrades to ~per-cycle stepping) that loses a link mid-run (the
    // prediction horizon must stop exactly at the epoch boundary and
    // re-arm against the detoured, smaller alive set).
    assert_kernels_agree(
        MeshConfig {
            width: 8,
            height: 8,
            wrap: true,
            vcs: vcs_override().unwrap_or(2).max(2),
            pattern: TrafficPattern::Tornado,
            injection_rate: 0.6,
            source_queue_cap: 4,
            watchdog_cycles: 2_000,
            seed: 23,
            faults: Some(FaultPlan {
                seed: 19,
                link_faults: 1,
                transient_link_faults: 1,
                transient_duration: 200,
                start_cycle: 200,
                window: 300,
                ..FaultPlan::default()
            }),
            ..MeshConfig::default()
        },
        100,
        1500,
        false,
    );
}

#[test]
fn kernels_agree_under_source_saturation() {
    // The source-queue cap and drop accounting must behave identically
    // in both kernels, including the drop counter itself.
    let cfg = MeshConfig {
        injection_rate: 0.4,
        pattern: TrafficPattern::Hotspot,
        source_queue_cap: 3,
        seed: 77,
        ..MeshConfig::default()
    };
    let mut active = Simulation::new(MeshConfig {
        kernel: SimKernel::ActiveSet,
        ..cfg.clone()
    });
    let mut reference = Simulation::new(MeshConfig {
        kernel: SimKernel::Reference,
        ..cfg
    });
    let sa = active.run(100, 1500);
    let sr = reference.run(100, 1500);
    assert!(sa.packets_dropped_at_source > 0, "cap must bite");
    assert_eq!(sa, sr);
}

#[test]
fn zero_injection_quiesces_the_whole_network() {
    // With nothing to do, the worklist must empty immediately and the
    // bulk accounting must reproduce the exact idle totals: one open
    // interval of `measure` cycles per output VC lane.
    let measure = 5000u64;
    for vcs in [1usize, 4] {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.0,
            vcs,
            ..MeshConfig::default()
        });
        assert_eq!(
            sim.kernel(),
            SimKernel::EventDriven,
            "Auto resolves to EventDriven at zero load"
        );
        let stats = sim.run(0, measure);
        assert_eq!(sim.active_router_count(), 0, "no router may stay active");
        assert_eq!(
            sim.cycles_leapt_total(),
            measure,
            "a dead network is one single leap"
        );
        let n = sim.mesh().len() as u64;
        let lanes = 5 * vcs as u64;
        let merged = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
        assert_eq!(merged.total_idle_cycles(), measure * n * lanes);
        assert_eq!(merged.interval_count(), n * lanes);
        assert_eq!(merged.open_runs().len(), (n * lanes) as usize);
        // Activity bulk accounting is exact too: every router saw every
        // cycle, and every free lane arbitrated every cycle.
        for a in &stats.router_activity {
            assert_eq!(a.cycles, measure);
            assert_eq!(a.arbitrations, measure * lanes);
            assert_eq!(a.crossbar_traversals, 0);
        }
        assert_eq!(stats.packets_injected, 0);
    }
}

#[test]
fn gated_network_quiesces_once_asleep() {
    // With gating, routers stay in the worklist only until their lanes
    // park; after the threshold walk the active set must still empty.
    for vcs in [1usize, 2] {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.0,
            vcs,
            gating: Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(3),
                wake_latency: 2,
            }),
            ..MeshConfig::default()
        });
        let measure = 1000;
        let stats = sim.run(0, measure);
        assert_eq!(sim.active_router_count(), 0);
        let counters = stats.total_gating_counters();
        let lanes = sim.mesh().len() as u64 * 5 * vcs as u64;
        // Every lane: 3 awake idle cycles, then asleep for the rest.
        assert_eq!(counters.sleep_entries, lanes);
        assert_eq!(counters.cycles_idle_awake, lanes * 3);
        assert_eq!(counters.cycles_asleep, lanes * (measure - 3));
        // And the reference kernel agrees bit-for-bit.
        assert_kernels_agree(
            MeshConfig {
                injection_rate: 0.0,
                vcs,
                gating: Some(SleepConfig {
                    policy: GatingPolicy::IdleThreshold(3),
                    wake_latency: 2,
                }),
                ..MeshConfig::default()
            },
            0,
            measure,
            false,
        );
    }
}
