//! Integration test: network simulation → idle histograms → gating
//! policies → scheme comparison, end to end across all five crates —
//! including the in-loop sleep FSM cross-validated against the offline
//! policy model with real characterized gating parameters.

use leakage_noc::core::characterize::Characterizer;
use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::netsim::{MeshConfig, NetworkStats, Simulation, SleepConfig, TrafficPattern};
use leakage_noc::power::gating::{energy_from_counters, evaluate_policy, GatingPolicy};
use leakage_noc::power::router::RouterPowerModel;

fn crossbar_cfg() -> CrossbarConfig {
    CrossbarConfig {
        flit_bits: 32,
        sim_dt: 0.5e-12,
        ..CrossbarConfig::paper()
    }
}

fn mesh_cfg() -> MeshConfig {
    MeshConfig {
        width: 4,
        height: 4,
        injection_rate: 0.04,
        pattern: TrafficPattern::UniformRandom,
        packet_len_flits: 4,
        buffer_depth: 4,
        seed: 11,
        ..MeshConfig::default()
    }
}

#[test]
fn end_to_end_gating_prefers_precharged_schemes() {
    let cfg = crossbar_cfg();

    let mut sim = Simulation::new(mesh_cfg());
    let stats = sim.run(500, 8000);
    assert!(stats.packets_delivered > 100);
    let hist = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
    assert!(hist.interval_count() > 100);

    let ch = Characterizer::new(&cfg);
    let mut oracle_savings = Vec::new();
    for scheme in [Scheme::Sc, Scheme::Dfc, Scheme::Dpc] {
        let c = ch.characterize(scheme).expect("characterization");
        let params =
            RouterPowerModel::from_characterization(&c, &cfg).port_gating_params(cfg.radix);
        let out = evaluate_policy(&hist, &params, GatingPolicy::Oracle, cfg.clock);
        oracle_savings.push((scheme, out.savings_fraction()));
    }

    // Oracle gating never loses energy.
    for &(scheme, s) in &oracle_savings {
        assert!(s >= 0.0, "{scheme}: oracle saving {s}");
    }
    // The pre-charged crossbar converts idleness into savings better
    // than the baseline (bigger standby delta, smaller breakeven).
    let sc = oracle_savings[0].1;
    let dpc = oracle_savings[2].1;
    assert!(dpc > sc, "DPC oracle saving {dpc:.3} must beat SC {sc:.3}");
}

#[test]
fn in_loop_gating_agrees_with_offline_model_for_characterized_schemes() {
    let cfg = crossbar_cfg();
    let ch = Characterizer::new(&cfg);

    // Ungated baseline for the latency penalty.
    let mut baseline = Simulation::new(mesh_cfg());
    let base = baseline.run(500, 8000);

    for scheme in [Scheme::Sc, Scheme::Dpc] {
        let c = ch.characterize(scheme).expect("characterization");
        let params =
            RouterPowerModel::from_characterization(&c, &cfg).port_gating_params(cfg.radix);
        let mit = params.min_idle_cycles(cfg.clock);
        let policy = GatingPolicy::IdleThreshold(mit);

        let mut sim = Simulation::new(MeshConfig {
            gating: Some(SleepConfig {
                policy,
                wake_latency: params.wake_latency_cycles,
            }),
            ..mesh_cfg()
        });
        let stats = sim.run(500, 8000);
        let counters = stats.total_gating_counters();
        assert!(counters.sleep_entries > 100, "{scheme}: {counters:?}");

        // Energy: in-loop counters vs offline histogram model, same run.
        let in_loop = energy_from_counters(&counters, &params, cfg.clock);
        let offline = evaluate_policy(
            &stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS),
            &params,
            policy,
            cfg.clock,
        );
        let rel =
            (in_loop.energy_policy.0 - offline.energy_policy.0).abs() / offline.energy_policy.0;
        assert!(rel < 0.05, "{scheme}: in-loop vs offline off by {rel:.4}");

        // The FSM must report the performance cost the offline model
        // cannot see: gating never *improves* latency, real stalls
        // happen, and the offline estimate (one wake per closed
        // sleeping interval) upper-bounds the measured stall cycles —
        // a woken port can overlap part of its wake with backpressure.
        assert!(
            stats.avg_latency() >= base.avg_latency() - 1e-9,
            "{scheme}: gated latency {:.2} below ungated {:.2}",
            stats.avg_latency(),
            base.avg_latency()
        );
        assert!(stats.wake_stall_cycles() > 0, "{scheme}: no stalls seen");
        // Ports caught mid-wake when the window closes leave their
        // interval open (no offline wake charged) but already counted
        // stall cycles — at most wake_latency per port of slack.
        let ports = 5 * stats.router_activity.len() as u64;
        assert!(
            stats.wake_stall_cycles()
                <= offline.wake_penalty_cycles + ports * params.wake_latency_cycles as u64,
            "{scheme}: measured stalls {} exceed the offline wake estimate {}",
            stats.wake_stall_cycles(),
            offline.wake_penalty_cycles
        );
    }
}

#[test]
fn router_power_scales_with_load() {
    let cfg = crossbar_cfg();
    let ch = Characterizer::new(&cfg);
    let c = ch.characterize(Scheme::Sc).expect("characterization");
    let model = RouterPowerModel::from_characterization(&c, &cfg);

    let run = |rate: f64| {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: rate,
            seed: 5,
            ..mesh_cfg()
        });
        let stats = sim.run(500, 5000);
        let total: f64 = stats
            .router_activity
            .iter()
            .map(|a| model.power(a).total().0)
            .sum();
        total
    };

    let light = run(0.01);
    let heavy = run(0.08);
    assert!(
        heavy > 1.2 * light,
        "heavier traffic must burn more: {light:.4} vs {heavy:.4}"
    );
}
