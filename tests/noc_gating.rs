//! Integration test: network simulation → idle histograms → gating
//! policies → scheme comparison, end to end across all five crates.

use leakage_noc::core::characterize::Characterizer;
use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::netsim::{MeshConfig, Simulation, TrafficPattern};
use leakage_noc::power::gating::{evaluate_policy, GatingPolicy};
use leakage_noc::power::router::RouterPowerModel;

fn crossbar_cfg() -> CrossbarConfig {
    CrossbarConfig {
        flit_bits: 32,
        sim_dt: 0.5e-12,
        ..CrossbarConfig::paper()
    }
}

#[test]
fn end_to_end_gating_prefers_precharged_schemes() {
    let cfg = crossbar_cfg();

    let mut sim = Simulation::new(MeshConfig {
        width: 4,
        height: 4,
        injection_rate: 0.04,
        pattern: TrafficPattern::UniformRandom,
        packet_len_flits: 4,
        buffer_depth: 4,
        seed: 11,
    });
    let stats = sim.run(500, 8000);
    assert!(stats.packets_delivered > 100);
    let hist = stats.merged_idle_histogram(4096);
    assert!(hist.interval_count() > 100);

    let ch = Characterizer::new(&cfg);
    let mut oracle_savings = Vec::new();
    for scheme in [Scheme::Sc, Scheme::Dfc, Scheme::Dpc] {
        let c = ch.characterize(scheme).expect("characterization");
        let params =
            RouterPowerModel::from_characterization(&c, &cfg).port_gating_params(cfg.radix);
        let out = evaluate_policy(&hist, &params, GatingPolicy::Oracle, cfg.clock);
        oracle_savings.push((scheme, out.savings_fraction()));
    }

    // Oracle gating never loses energy.
    for &(scheme, s) in &oracle_savings {
        assert!(s >= 0.0, "{scheme}: oracle saving {s}");
    }
    // The pre-charged crossbar converts idleness into savings better
    // than the baseline (bigger standby delta, smaller breakeven).
    let sc = oracle_savings[0].1;
    let dpc = oracle_savings[2].1;
    assert!(dpc > sc, "DPC oracle saving {dpc:.3} must beat SC {sc:.3}");
}

#[test]
fn router_power_scales_with_load() {
    let cfg = crossbar_cfg();
    let ch = Characterizer::new(&cfg);
    let c = ch.characterize(Scheme::Sc).expect("characterization");
    let model = RouterPowerModel::from_characterization(&c, &cfg);

    let run = |rate: f64| {
        let mut sim = Simulation::new(MeshConfig {
            width: 4,
            height: 4,
            injection_rate: rate,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 5,
        });
        let stats = sim.run(500, 5000);
        let total: f64 = stats
            .router_activity
            .iter()
            .map(|a| model.power(a).total().0)
            .sum();
        total
    };

    let light = run(0.01);
    let heavy = run(0.08);
    assert!(
        heavy > 1.2 * light,
        "heavier traffic must burn more: {light:.4} vs {heavy:.4}"
    );
}
