//! Deferred (lazy) per-router leap settlement vs the eager oracle.
//!
//! The lazy path never settles a quiescent router at the measurement
//! boundary; it records a watermark and pays each router's *settlement
//! debt* on first touch — or at close-out, or when a deadline abort
//! freezes the run mid-window. [`MeshConfig::eager_settlement`] keeps
//! the original settle-everything-at-the-boundary path alive as a
//! test-only oracle; these properties pin that the two are
//! **bit-identical** in every observable way:
//!
//! * final [`NetworkStats`] (counters, gating, every histogram bin),
//!   across gating policies, traffic patterns, VC counts and fault
//!   plans — wakes and fault reaps interleave with leaps freely;
//! * typed [`SimAbort`] values when a cycle budget cuts the run short
//!   mid-measurement, **and** the post-abort engine state: a second
//!   run from the aborted state must also produce identical stats,
//!   which a debtor router can only satisfy by settling a *partial*
//!   span at the abort boundary.

use leakage_noc::netsim::{
    FaultPlan, GatingPolicy, InjectionProcess, MeshConfig, SimKernel, Simulation, SleepConfig,
    TrafficPattern,
};
use proptest::prelude::*;

/// Runs `cfg` under one kernel with deferred settlement and with the
/// eager oracle, asserting identical outcomes — including, on a
/// deadline abort, a follow-up run that observes the post-abort slabs.
fn assert_lazy_matches_eager(kernel: SimKernel, cfg: &MeshConfig, warmup: u64, measure: u64) {
    let mut lazy = Simulation::new(MeshConfig {
        kernel,
        eager_settlement: false,
        ..cfg.clone()
    });
    let mut eager = Simulation::new(MeshConfig {
        kernel,
        eager_settlement: true,
        ..cfg.clone()
    });
    let rl = lazy.try_run(warmup, measure);
    let re = eager.try_run(warmup, measure);
    match (rl, re) {
        (Ok(sl), Ok(se)) => {
            assert_eq!(sl, se, "stats diverged from the eager oracle ({kernel:?})");
        }
        (Err(al), Err(ae)) => {
            assert_eq!(al, ae, "aborts diverged from the eager oracle ({kernel:?})");
            // The abort froze the run with debts outstanding; the only
            // way a later run agrees is if the lazy engine settled
            // every debtor's *partial* span (boundary → abort cycle)
            // exactly as the eager path's boundary reset did.
            let follow = cfg.cycle_budget.min(60);
            let sl = lazy
                .try_run(0, follow)
                .expect("follow-up within budget must complete");
            let se = eager
                .try_run(0, follow)
                .expect("follow-up within budget must complete");
            assert_eq!(
                sl, se,
                "post-abort stats diverged from the eager oracle ({kernel:?})"
            );
        }
        (rl, re) => panic!("outcome diverged for {kernel:?}: lazy {rl:?} vs eager {re:?}"),
    }
}

fn all_kernels_lazy_match_eager(cfg: MeshConfig, warmup: u64, measure: u64) {
    for kernel in [SimKernel::ActiveSet, SimKernel::EventDriven] {
        assert_lazy_matches_eager(kernel, &cfg, warmup, measure);
    }
    let sharded = MeshConfig {
        shards: [2, 4][(cfg.seed % 2) as usize],
        threads: 1,
        ..cfg
    };
    assert_lazy_matches_eager(SimKernel::Sharded, &sharded, warmup, measure);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Leaps, wakes and close-out interleaved at random: rates span
    /// the leap-heavy regime through busy meshes, across gating
    /// policies (threshold boundaries inside and outside typical idle
    /// spans), VC counts, torus wrap and bursty injection.
    #[test]
    fn deferred_settlement_is_bit_identical(
        pattern_idx in 0usize..TrafficPattern::ALL.len(),
        rate_sel in 0u8..3,
        rate in 0.0005f64..0.10,
        seed in 0u64..10_000,
        wrap_sel in 0u8..2,
        bursty_sel in 0u8..2,
        vcs_sel in 0usize..3,
        gating_sel in 0u8..5,
        wake in 0u32..3,
        warmup in 0u64..150,
        measure in 100u64..500,
    ) {
        let gating = match gating_sel {
            0 => None,
            1 => Some(GatingPolicy::Never),
            2 => Some(GatingPolicy::Immediate),
            3 => Some(GatingPolicy::IdleThreshold(2)),
            _ => Some(GatingPolicy::IdleThreshold(9)),
        }
        .map(|policy| SleepConfig { policy, wake_latency: wake });
        let cfg = MeshConfig {
            pattern: TrafficPattern::ALL[pattern_idx],
            // Skew toward near-dead meshes: that is where debts span
            // the whole window and the close-out walk does the work.
            injection_rate: match rate_sel { 0 => rate * 0.01, 1 => rate * 0.1, _ => rate },
            seed,
            wrap: wrap_sel == 1,
            vcs: [1, 2, 4][vcs_sel].max(if wrap_sel == 1 { 2 } else { 1 }),
            injection: if bursty_sel == 1 {
                InjectionProcess::BurstyOnOff { mean_burst: 8, mean_idle: 24 }
            } else {
                InjectionProcess::Bernoulli
            },
            gating,
            ..MeshConfig::default()
        };
        all_kernels_lazy_match_eager(cfg, warmup, measure);
    }

    /// Fault reaps interleave with outstanding debt: epochs land
    /// mid-window (often mid-leap for the event kernel), reaping worms
    /// and rerouting — none of which may disturb deferred gating state.
    #[test]
    fn deferred_settlement_survives_fault_reaps(
        rate in 0.002f64..0.08,
        seed in 0u64..10_000,
        fault_seed in 0u64..1_000,
        wrap_sel in 0u8..2,
        link_faults in 0usize..3,
        router_faults in 0usize..2,
        transients in 0usize..2,
        start in 50u64..300,
        window in 1u64..300,
        warmup in 0u64..120,
    ) {
        prop_assume!(link_faults + router_faults + transients > 0);
        let cfg = MeshConfig {
            width: 6,
            height: 6,
            injection_rate: rate,
            seed,
            wrap: wrap_sel == 1,
            vcs: if wrap_sel == 1 { 2 } else { 1 },
            gating: Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(3),
                wake_latency: 1,
            }),
            faults: Some(FaultPlan {
                seed: fault_seed,
                link_faults,
                router_faults,
                transient_link_faults: transients,
                transient_duration: 120,
                start_cycle: start,
                window,
                ..FaultPlan::default()
            }),
            ..MeshConfig::default()
        };
        all_kernels_lazy_match_eager(cfg, warmup, 400);
    }

    /// Deadline aborts cut debtors mid-span: budgets land before,
    /// on and after the measurement boundary; abort values and
    /// post-abort state must match the oracle exactly.
    #[test]
    fn deferred_settlement_survives_budget_aborts(
        rate_sel in 0u8..2,
        rate in 0.001f64..0.08,
        seed in 0u64..10_000,
        gating_sel in 0u8..3,
        warmup in 20u64..120,
        measure in 100u64..400,
        budget_frac in 0.1f64..1.5,
    ) {
        let total = warmup + measure;
        // Spread the deadline across the whole run, biased inside the
        // measurement window (mid-window partial-span settlement).
        let budget = ((total as f64 * budget_frac) as u64).max(1);
        let gating = match gating_sel {
            0 => None,
            1 => Some(GatingPolicy::Immediate),
            _ => Some(GatingPolicy::IdleThreshold(4)),
        }
        .map(|policy| SleepConfig { policy, wake_latency: 1 });
        let cfg = MeshConfig {
            injection_rate: if rate_sel == 0 { rate * 0.05 } else { rate },
            seed,
            gating,
            cycle_budget: budget,
            ..MeshConfig::default()
        };
        all_kernels_lazy_match_eager(cfg, warmup, measure);
    }
}
